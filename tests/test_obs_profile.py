"""Latency-attribution tests: span stitching, the exact-sum guarantee,
ProfileReport/flamegraph round trips, the profile CLI, per-job profiles,
bench attribution, and the diagnostics cross-check."""

import json
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.__main__ import main
from repro.core import Algorithm, BeaconConfig, BeaconD, OptimizationFlags
from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments.diagnostics import collect
from repro.experiments.parallel import SweepJob, profile_path_for
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload
from repro.obs import (
    PROFILE_SCHEMA,
    LatencyProfiler,
    ProfileReport,
    SpanStitcher,
    TraceFormatError,
    TraceRecorder,
    TraceSession,
    busiest_components,
    diff_reports,
    load_trace,
    profile_trace_file,
    write_flamegraph,
)
from repro.obs.profile import build_report
from repro.perf.harness import bench_figures, fingerprint, resolve_figure

TCK = 1.25


# -- hand-built feed helpers -------------------------------------------------------


def _feed_request_story(recorder, pid=1, rid=7, begin=100, enq=160,
                        svc_start=200, svc=30, end=400):
    """One request: entry -> link hop -> queue -> DRAM -> response."""
    recorder.async_begin("req", "mem_req", "sys.pool", begin, rid, pid=pid,
                         args={"task": 3, "src": "host", "dst": "d0.0",
                               "kind": "read", "size": 64})
    recorder.complete("cxl", "xfer", "sys.pool.fabric.host->sw0", begin, 16,
                      pid=pid,
                      args={"role": "cxl_link", "lat": 12, "wait": 2,
                            "reqs": [rid]})
    recorder.complete("dram", "RD", "sys.pool.d0.0.mc", svc_start, svc,
                      pid=pid,
                      args={"row_state": "hit", "req": rid, "task": 3,
                            "wait": svc_start - enq, "queue_depth": 4})
    recorder.async_end("req", "mem_req", "sys.pool", end, rid, pid=pid)


class TestSpanStitching:
    def _stitch(self, order=None):
        recorder = TraceRecorder(tck_ns=TCK)
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        _feed_request_story(recorder)
        if order is not None:
            events = [recorder.events[i] for i in order]
            fresh = SpanStitcher(tck_ns=TCK)
            fresh.feed_many(events)
            return fresh.finalize()
        return stitcher.finalize()

    def test_exact_phase_decomposition(self):
        run = self._stitch()
        assert run.unmatched_requests == 0
        (req,) = run.requests
        assert req.complete and not req.clamped
        assert req.total_cycles == 300
        # request leg 60: hop serialize 16 + propagate 12 + wait 2, rest other
        assert req.phases["req_cxl_serialize"] == 16
        assert req.phases["req_cxl_propagate"] == 12
        assert req.phases["req_link_wait"] == 2
        assert req.phases["req_other"] == 30
        assert req.phases["mc_queue"] == 40
        assert req.phases["dram_row_hit"] == 30
        assert req.phases["resp_other"] == 170
        assert sum(req.phases.values()) == req.total_cycles

    def test_out_of_order_feed_is_equivalent(self):
        in_order = self._stitch()
        reversed_feed = self._stitch(order=[3, 2, 1, 0])
        assert [r.phases for r in in_order.requests] == [
            r.phases for r in reversed_feed.requests
        ]

    def test_unmatched_request_is_counted_not_fatal(self):
        recorder = TraceRecorder(tck_ns=TCK)
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        recorder.async_begin("req", "mem_req", "p", 10, 99, pid=1)
        _feed_request_story(recorder, rid=7)
        run = stitcher.finalize()
        assert run.unmatched_requests == 1
        assert len(run.requests) == 1

    def test_request_without_interior_stays_summed(self):
        # Routed atomics never visit a controller: no dram span.
        recorder = TraceRecorder(tck_ns=TCK)
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        recorder.async_begin("req", "mem_req", "p", 0, 5, pid=1)
        recorder.complete("cxl", "xfer", "p.fabric.l", 0, 10, pid=1,
                          args={"role": "cxl_link", "lat": 12, "wait": 0,
                                "reqs": [5]})
        recorder.async_end("req", "mem_req", "p", 50, 5, pid=1)
        (req,) = stitcher.finalize().requests
        assert not req.complete
        assert req.phases["fab_cxl_serialize"] == 10
        assert req.phases["fab_cxl_propagate"] == 12
        assert req.phases["unattributed"] == 28
        assert sum(req.phases.values()) == 50

    def test_task_phase_split(self):
        recorder = TraceRecorder(tck_ns=TCK)
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        recorder.async_begin("ndp", "task", "m", 0, 1, pid=1,
                             args={"algorithm": "fm", "node": "d0"})
        recorder.instant("ndp", "ready", "m.sched", 0, pid=1,
                         args={"task": 1, "queue": 1})
        recorder.complete("ndp", "compute", "m.pes", 5, 10, pid=1,
                          args={"task": 1})
        recorder.instant("ndp", "stall", "m", 15, pid=1, args={"task": 1})
        recorder.instant("ndp", "ready", "m.sched", 30, pid=1,
                         args={"task": 1, "queue": 1})
        recorder.complete("ndp", "compute", "m.pes", 32, 8, pid=1,
                          args={"task": 1})
        recorder.async_end("ndp", "task", "m", 40, 1, pid=1)
        (task,) = stitcher.finalize().tasks
        assert task.phases == {"compute": 18, "mem_stall": 15, "pe_wait": 7}
        assert sum(task.phases.values()) == task.total_cycles == 40


_ROLES = st.sampled_from(["cxl_link", "switch_bus", "host_bus", "ddr_bus"])


class TestExactSumProperty:
    @given(
        begin=st.integers(0, 10**6),
        g_req=st.integers(0, 2000),
        g_queue=st.integers(0, 2000),
        svc=st.integers(1, 500),
        g_resp=st.integers(0, 2000),
        row_state=st.sampled_from(["hit", "miss", "conflict"]),
        hops=st.lists(
            st.tuples(_ROLES, st.integers(0, 800), st.integers(0, 300),
                      st.integers(0, 300), st.booleans()),
            max_size=6,
        ),
        packer_waits=st.lists(st.integers(0, 400), max_size=3),
    )
    def test_request_phases_sum_to_total(self, begin, g_req, g_queue, svc,
                                         g_resp, row_state, hops,
                                         packer_waits):
        """Decomposition sums to end-to-end latency even when measured
        sub-components overshoot their legs (clamping)."""
        enq = begin + g_req
        svc_start = enq + g_queue
        end = svc_start + svc + g_resp
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder = TraceRecorder(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        # deliberately out of order: end first, interior, begin last
        recorder.async_end("req", "mem_req", "p", end, 1, pid=1)
        recorder.complete("dram", "RD", "p.mc", svc_start, svc, pid=1,
                          args={"row_state": row_state, "req": 1,
                                "wait": g_queue, "queue_depth": 0})
        for role, serialize, lat, wait, on_response_leg in hops:
            start = svc_start + svc if on_response_leg else begin
            recorder.complete("cxl", "xfer", "p.l", start, serialize, pid=1,
                              args={"role": role, "lat": lat, "wait": wait,
                                    "reqs": [1]})
        for wait in packer_waits:
            recorder.instant("cxl", "flit_flush", "p.pk", begin, pid=1,
                             args={"reqs": [1], "waits": [wait]})
        recorder.async_begin("req", "mem_req", "p", begin, 1, pid=1)
        (req,) = stitcher.finalize().requests
        assert sum(req.phases.values()) == req.total_cycles == end - begin
        assert all(cycles >= 0 for cycles in req.phases.values())

    @given(
        total=st.integers(0, 10**5),
        computes=st.lists(
            st.tuples(st.integers(0, 10**5), st.integers(0, 10**5)),
            max_size=5,
        ),
        stalls=st.lists(st.integers(0, 10**5), max_size=5),
        readies=st.lists(st.integers(0, 10**5), max_size=5),
    )
    def test_task_phases_sum_to_total(self, total, computes, stalls, readies):
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder = TraceRecorder(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        recorder.async_begin("ndp", "task", "m", 0, 1, pid=1)
        recorder.async_end("ndp", "task", "m", total, 1, pid=1)
        for offset, dur in computes:
            recorder.complete("ndp", "compute", "m.pes", offset, dur, pid=1,
                              args={"task": 1})
        for offset in stalls:
            recorder.instant("ndp", "stall", "m", offset, pid=1,
                             args={"task": 1})
        for offset in readies:
            recorder.instant("ndp", "ready", "m.sched", offset, pid=1,
                             args={"task": 1})
        (task,) = stitcher.finalize().tasks
        assert sum(task.phases.values()) == task.total_cycles == total
        assert all(cycles >= 0 for cycles in task.phases.values())


# -- report artifact ---------------------------------------------------------------


def _synthetic_report(mean_latency=450.0, queue=1000):
    recorder = TraceRecorder(tck_ns=TCK)
    profiler = LatencyProfiler(tck_ns=TCK).attach(recorder)
    _feed_request_story(recorder)
    recorder.register_root(1, "sys", None)
    recorder.note_runtime(1, 500)
    report = profiler.report(figure="synthetic", scale="unit")
    # nudge fields for diff tests
    system = report.systems["sys"]
    system["requests"]["mean_latency_cycles"] = mean_latency
    system["requests"]["phases_cycles"]["mc_queue"] = queue
    return report


class TestProfileReportArtifact:
    def test_schema_round_trip(self, tmp_path):
        report = _synthetic_report()
        assert report.schema == PROFILE_SCHEMA
        path = str(tmp_path / "p.json")
        report.save(path)
        again = ProfileReport.load(path)
        assert again.to_dict() == report.to_dict()

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="schema"):
            ProfileReport.load(str(path))

    def test_report_is_deterministic_json(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _synthetic_report().save(str(a))
        _synthetic_report().save(str(b))
        assert a.read_text() == b.read_text()

    def test_flamegraph_collapsed_stack_format(self, tmp_path):
        report = _synthetic_report()
        path = tmp_path / "fg.folded"
        lines_written = write_flamegraph(report, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == lines_written > 0
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert len(stack.split(";")) == 3  # layer;component;phase
        assert any(line.startswith("request;sys;mc_queue ") for line in lines)

    def test_diff_ranks_largest_delta_first(self):
        a = _synthetic_report(mean_latency=450.0, queue=1000)
        b = _synthetic_report(mean_latency=460.0, queue=5000)
        deltas = diff_reports(a, b)
        assert deltas[0].system == "sys"
        assert deltas[0].metric == "request_phase.mc_queue"
        assert deltas[0].delta == 4000
        assert deltas[0].b == 5000


# -- export-layer satellites -------------------------------------------------------


class TestExportFixes:
    def test_load_trace_clear_error_on_truncated_file(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"traceEvents": [{"ph": "i"')  # killed mid-write
        with pytest.raises(TraceFormatError, match="partial.json"):
            load_trace(str(path))

    def test_load_trace_clear_error_on_wrong_shape(self, tmp_path):
        path = tmp_path / "notatrace.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(TraceFormatError, match="traceEvents"):
            load_trace(str(path))

    def test_busiest_components_counts_async_spans(self):
        events = [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 5,
             "args": {"name": "sys.module"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 6,
             "args": {"name": "sys.pes"}},
            # async task lifetime on tid 5: 100 us
            {"ph": "b", "cat": "ndp", "name": "task", "id": "0x1",
             "pid": 1, "tid": 5, "ts": 0.0},
            {"ph": "e", "cat": "ndp", "name": "task", "id": "0x1",
             "pid": 1, "tid": 5, "ts": 100.0},
            # duration span on tid 6: 40 us
            {"ph": "X", "cat": "ndp", "name": "compute",
             "pid": 1, "tid": 6, "ts": 0.0, "dur": 40.0},
            # unmatched halves must not crash or count
            {"ph": "e", "cat": "ndp", "name": "task", "id": "0x9",
             "pid": 1, "tid": 5, "ts": 7.0},
            {"ph": "b", "cat": "ndp", "name": "task", "id": "0x8",
             "pid": 1, "tid": 5, "ts": 3.0},
        ]
        ranked = busiest_components(events)
        assert ranked[0] == ("pid1:sys.module", 100.0)
        assert ranked[1] == ("pid1:sys.pes", 40.0)

    def test_truncation_warns_and_flags_export(self, tmp_path):
        session = TraceSession(limit=2)
        for cycle in range(5):
            session.recorder.instant("ndp", "tick", "p", cycle, pid=1)
        path = str(tmp_path / "t.json")
        with pytest.warns(RuntimeWarning, match="raise --trace-limit"):
            session.save(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["otherData"]["truncated"] is True
        assert payload["otherData"]["dropped"] == 3

    def test_untruncated_export_does_not_warn(self, tmp_path):
        session = TraceSession(limit=10)
        session.recorder.instant("ndp", "tick", "p", 1, pid=1)
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            session.save(str(tmp_path / "t.json"))
        with open(tmp_path / "t.json") as handle:
            assert json.load(handle)["otherData"]["truncated"] is False


class TestListenerSeesPastStorageCap:
    def test_profiler_complete_with_zero_storage(self):
        recorder = TraceRecorder(tck_ns=TCK, limit=0)
        stitcher = SpanStitcher(tck_ns=TCK)
        recorder.subscribe(stitcher.feed)
        _feed_request_story(recorder)
        assert recorder.recorded == 0
        assert recorder.dropped == 4
        run = stitcher.finalize()
        assert len(run.requests) == 1
        assert run.requests[0].complete


# -- live profiling of real figure runs --------------------------------------------


@pytest.fixture(scope="module")
def fig16_live_profile():
    from repro.experiments import fig16_prealignment

    session = TraceSession(limit=0, profile=True)
    with session:
        result = fig16_prealignment.run(
            ExperimentScale.quick(), runner=ParallelSweepRunner(jobs=1)
        )
    return session, result


class TestLiveProfiling:
    def test_every_stitched_request_sums_exactly(self, fig16_live_profile):
        session, _ = fig16_live_profile
        run = session.profiler.stitcher.finalize()
        assert len(run.requests) > 100
        assert run.unmatched_requests == 0
        for request in run.requests:
            assert sum(request.phases.values()) == request.total_cycles
        for task in run.tasks:
            assert sum(task.phases.values()) == task.total_cycles

    def test_report_structure(self, fig16_live_profile):
        session, _ = fig16_live_profile
        report = session.profile_report(figure="fig16", scale="quick")
        assert not report.truncated
        assert set(report.systems) >= {"beacon-d", "beacon-s"}
        for system in report.systems.values():
            requests = system["requests"]
            assert requests["stitched"] > 0
            assert (
                sum(requests["phases_cycles"].values())
                == requests["total_latency_cycles"]
            )
            assert system["critical_path"]["bound"] != "idle"
            for check in system["littles_law"].values():
                assert check["ok"], check

    def test_profiling_is_observational(self, fig16_live_profile):
        from repro.perf.harness import BENCH_FIGURES

        _, profiled_result = fig16_live_profile
        plain = BENCH_FIGURES["fig16"](
            ExperimentScale.quick(), runner=ParallelSweepRunner(jobs=1)
        )
        assert fingerprint(plain) == fingerprint(profiled_result)

    def test_post_hoc_trace_profile_agrees_with_live(self, fig16_live_profile,
                                                     tmp_path):
        from repro.experiments import fig16_prealignment

        session = TraceSession(limit=None, profile=True)
        with session:
            fig16_prealignment.run(
                ExperimentScale.quick(), runner=ParallelSweepRunner(jobs=1)
            )
        path = str(tmp_path / "t.json")
        session.save(path)
        live = session.profile_report(figure="fig16")
        posthoc = profile_trace_file(path, figure="fig16")
        assert posthoc.source == "events"
        assert not posthoc.truncated
        for label, system in live.systems.items():
            assert (
                posthoc.systems[label]["requests"]["phases_cycles"]
                == system["requests"]["phases_cycles"]
            )


# -- diagnostics cross-check -------------------------------------------------------


@pytest.fixture(scope="module")
def crosschecked_run():
    session = TraceSession(limit=0, profile=True)
    with session:
        system = BeaconD(
            config=BeaconConfig().scaled(16),
            flags=OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING),
        )
        workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.06,
                                         read_scale=2.0)
        system.run_fm_seeding(workload)
    report = session.profile_report(figure="crosscheck")
    stitched = session.profiler.stitcher.finalize()
    return system, collect(system), report, stitched


class TestDiagnosticsCrossCheck:
    """The legacy StatScope-based diagnostics and the trace-driven profiler
    measure the same run through independent instruments; they must agree.
    Where both report a quantity the profiler is authoritative (see the
    ``repro.experiments.diagnostics`` module docstring)."""

    def test_link_utilization_agrees(self, crosschecked_run):
        system, diag, report, stitched = crosschecked_run
        pid = system.engine.trace_id
        runtime = stitched.runtimes[pid]
        busy_by_suffix = {
            path: cycles
            for (busy_pid, path), cycles in stitched.busy_cycles.items()
            if busy_pid == pid
        }
        compared = 0
        for link in diag.links:
            matches = [
                cycles for path, cycles in busy_by_suffix.items()
                if path.endswith(link.name)
            ]
            if not matches:
                continue
            compared += 1
            trace_util = min(1.0, matches[0] / runtime)
            assert trace_util == pytest.approx(link.utilization, abs=0.01)
        assert compared >= 3

    def test_row_hit_rate_agrees(self, crosschecked_run):
        _system, diag, report, _stitched = crosschecked_run
        states = report.systems["beacon-d"]["requests"]["row_states"]
        total = sum(states.values())
        assert total > 0
        profiler_rate = states.get("hit", 0) / total
        assert profiler_rate == pytest.approx(
            diag.total_row_hit_rate(), abs=0.02
        )

    def test_pe_utilization_agrees(self, crosschecked_run):
        system, _diag, report, _stitched = crosschecked_run
        end = system.engine.now
        pe_utils = report.systems["beacon-d"]["pe_utilization"]
        compared = 0
        for module in system.ndp_modules:
            traced = pe_utils.get(module.pes.path)
            if traced is None:
                continue
            compared += 1
            assert traced == pytest.approx(
                module.pes.utilization(end), abs=0.02
            )
        assert compared == len(system.ndp_modules)


# -- CLI ---------------------------------------------------------------------------


class TestProfileCli:
    def test_profile_verb_accepts_module_style_alias(self, tmp_path, capsys):
        profile_out = str(tmp_path / "p.json")
        flame_out = str(tmp_path / "p.folded")
        rc = main(["profile", "fig16_prealignment",
                   "--profile-out", profile_out, "--flame-out", flame_out])
        assert rc == 0
        report = ProfileReport.load(profile_out)
        assert report.figure == "fig16"
        assert report.schema == PROFILE_SCHEMA
        for system in report.systems.values():
            requests = system["requests"]
            assert (
                sum(requests["phases_cycles"].values())
                == requests["total_latency_cycles"]
            )
        assert os.path.getsize(flame_out) > 0
        out = capsys.readouterr().out
        assert "bound:" in out
        assert "collapsed stacks" in out

    def test_profile_diff_cli(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        _synthetic_report(queue=1000).save(a)
        _synthetic_report(queue=6000).save(b)
        rc = main(["profile", "--diff", a, b])
        assert rc == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "request_phase.mc_queue" in l]
        assert lines and "+5000" in lines[0]

    def test_profile_requires_figure_or_diff(self):
        with pytest.raises(SystemExit):
            main(["profile"])
        with pytest.raises(SystemExit):
            main(["profile", "nope"])

    def test_resolve_figure_aliases(self):
        assert resolve_figure("fig16") == "fig16"
        assert resolve_figure("fig16_prealignment") == "fig16"
        assert resolve_figure("fig12-fm-seeding") == "fig12"
        assert resolve_figure("nope") is None


# -- per-job profiles through the runner -------------------------------------------


def _profiled_sweep_point(scale):
    from repro.experiments import fig16_prealignment

    return fig16_prealignment.run(scale, runner=ParallelSweepRunner(jobs=1))


class TestPerJobProfiles:
    def test_profile_dir_writes_one_report_per_job(self, tmp_path):
        profile_dir = str(tmp_path / "profiles")
        runner = ParallelSweepRunner(jobs=1, profile_dir=profile_dir)
        jobs = [
            SweepJob("pt/a", _profiled_sweep_point, (ExperimentScale.quick(),)),
            SweepJob("pt/b", _profiled_sweep_point, (ExperimentScale.quick(),)),
        ]
        results = runner.run(jobs)
        assert list(results) == ["pt/a", "pt/b"]
        for job in jobs:
            report = ProfileReport.load(profile_path_for(profile_dir, job.key))
            assert report.schema == PROFILE_SCHEMA
            assert report.totals["requests"]["count"] > 0

    def test_env_var_enables_profile_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "envp"))
        assert ParallelSweepRunner(jobs=1).profile_dir == str(tmp_path / "envp")
        monkeypatch.delenv("REPRO_PROFILE_DIR")
        assert ParallelSweepRunner(jobs=1).profile_dir is None

    def test_profile_and_trace_dir_combine(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        profile_dir = str(tmp_path / "profiles")
        runner = ParallelSweepRunner(jobs=1, trace_dir=trace_dir,
                                     profile_dir=profile_dir)
        runner.run([
            SweepJob("pt", _profiled_sweep_point, (ExperimentScale.quick(),)),
        ])
        assert load_trace(os.path.join(trace_dir, "pt.json"))
        assert ProfileReport.load(profile_path_for(profile_dir, "pt"))


# -- bench attribution -------------------------------------------------------------


class TestBenchAttribution:
    def test_bench_rows_carry_attribution(self):
        results = bench_figures(figures=["fig16"], verify=False,
                                attribution=True)
        (entry,) = results
        attribution = entry.attribution
        assert attribution is not None
        assert attribution["request_phases_cycles"]
        assert sum(attribution["request_phases_cycles"].values()) > 0
        assert attribution["bound_by_system"]
        assert entry.to_dict()["attribution"] == attribution
