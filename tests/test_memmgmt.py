"""Tests for regions, layouts, allocator, placement, and the framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.mapping import RankInterleaveMapping
from repro.dram.request import DataClass, MemoryRequest
from repro.dram.timing import DimmGeometry
from repro.memmgmt import (
    AllocationError,
    AllocationRequest,
    BlockMapLayout,
    PlacementPlanner,
    PoolAllocator,
    Region,
    RegionMap,
    ReplicatedLayout,
    StripedLayout,
)

GEO = DimmGeometry()


class TestStripedLayout:
    def test_round_robin(self):
        layout = StripedLayout([3, 7], stripe_bytes=64)
        assert layout.locate(0) == (3, 0)
        assert layout.locate(64) == (7, 0)
        assert layout.locate(128) == (3, 64)
        assert layout.locate(70) == (7, 6)

    @settings(max_examples=100)
    @given(st.integers(0, 1 << 24), st.integers(0, 1 << 24))
    def test_injective(self, a, b):
        layout = StripedLayout([0, 1, 2], stripe_bytes=128)
        if a != b:
            assert layout.locate(a) != layout.locate(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            StripedLayout([])
        with pytest.raises(ValueError):
            StripedLayout([1], stripe_bytes=0)

    def test_bytes_on_dimm(self):
        layout = StripedLayout([0, 1], stripe_bytes=64)
        assert layout.bytes_on_dimm(0, 1000) >= 500
        assert layout.bytes_on_dimm(9, 1000) == 0


class TestBlockMapLayout:
    def test_dense_per_dimm_slots(self):
        layout = BlockMapLayout(32, [5, 9, 5, 9, 5])
        assert layout.locate(0) == (5, 0)
        assert layout.locate(32) == (9, 0)
        assert layout.locate(64) == (5, 32)
        assert layout.locate(4 * 32 + 7) == (5, 2 * 32 + 7)

    def test_out_of_range(self):
        layout = BlockMapLayout(32, [0])
        with pytest.raises(ValueError):
            layout.locate(32)

    def test_dimm_indices_and_bytes(self):
        layout = BlockMapLayout(16, [2, 2, 4])
        assert layout.dimm_indices == (2, 4)
        assert layout.bytes_on_dimm(2, 48) == 32
        assert layout.bytes_on_dimm(4, 48) == 16


class TestReplicatedLayout:
    def _layout(self):
        return ReplicatedLayout(
            {"sw0": StripedLayout([0, 1]), "sw1": StripedLayout([2, 3])},
            home_resolver=lambda node: {"d0.0": "sw0", "d1.0": "sw1",
                                        "sw0": "sw0", "sw1": "sw1"}.get(node),
        )

    def test_requester_selects_replica(self):
        layout = self._layout()
        assert layout.locate(0, requester="d0.0")[0] in (0, 1)
        assert layout.locate(0, requester="d1.0")[0] in (2, 3)
        assert layout.locate(0, requester="sw1")[0] in (2, 3)

    def test_unknown_requester_uses_default(self):
        layout = self._layout()
        assert layout.locate(0, requester="mystery")[0] in (0, 1)
        assert layout.locate(0)[0] in (0, 1)

    def test_indices_union(self):
        assert self._layout().dimm_indices == (0, 1, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedLayout({})


class TestRegionMap:
    def _region(self, name, base, size):
        mapping = RankInterleaveMapping(GEO)
        return Region(name=name, base=base, size=size,
                      data_class=DataClass.GENERIC,
                      layout=StripedLayout([0]), mappings={0: mapping})

    def test_find_and_translate(self):
        rmap = RegionMap()
        rmap.add(self._region("a", 0, 1000))
        rmap.add(self._region("b", 4096, 1000))
        assert rmap.find(500).name == "a"
        assert rmap.find(4500).name == "b"
        with pytest.raises(KeyError):
            rmap.find(2000)
        req = MemoryRequest(addr=4200, size=8)
        rmap.translate(req)
        assert req.dimm_index == 0
        assert req.coord is not None

    def test_overlap_rejected(self):
        rmap = RegionMap()
        rmap.add(self._region("a", 0, 1000))
        with pytest.raises(ValueError):
            rmap.add(self._region("b", 999, 10))

    def test_remove(self):
        rmap = RegionMap()
        rmap.add(self._region("a", 0, 100))
        rmap.remove("a")
        with pytest.raises(KeyError):
            rmap.find(0)
        with pytest.raises(KeyError):
            rmap.remove("a")

    def test_by_name(self):
        rmap = RegionMap()
        rmap.add(self._region("a", 0, 100))
        assert rmap.by_name("a").size == 100
        with pytest.raises(KeyError):
            rmap.by_name("nope")


def make_allocator(cxlg_per_switch=1, dimms_per_switch=4, switches=2,
                   tenant_bytes=0):
    alloc = PoolAllocator()
    index = 0
    for s in range(switches):
        for j in range(dimms_per_switch):
            alloc.register_dimm(
                index, f"d{s}.{j}", f"sw{s}", is_cxlg=j < cxlg_per_switch,
                tenant_bytes=tenant_bytes,
            )
            index += 1
    return alloc


class TestAllocator:
    def test_dimms_near_orders_cxlg_first(self):
        alloc = make_allocator()
        near = alloc.dimms_near("sw1")
        assert near[0] == 4  # the CXLG-DIMM of sw1
        assert all(alloc.dimm(d).switch == "sw1" for d in near)

    def test_dedicate_and_release(self):
        alloc = make_allocator(tenant_bytes=8192)
        migrated = alloc.dedicate([0, 1], "me")
        assert migrated == 2 * 8192
        assert alloc.dimm(0).non_cacheable
        assert alloc.page_table_updates == 4
        with pytest.raises(AllocationError):
            alloc.dedicate([0], "someone-else")
        alloc.release([0, 1], "me")
        assert alloc.dimm(0).dedicated_to is None

    def test_release_wrong_owner(self):
        alloc = make_allocator()
        alloc.dedicate([0], "me")
        with pytest.raises(AllocationError):
            alloc.release([0], "other")

    def test_region_rows_accounted_disjointly(self):
        alloc = make_allocator()
        factory = lambda dimm, row_base: RankInterleaveMapping(GEO, row_base=row_base)
        r1 = alloc.allocate_region("a", 1 << 22, DataClass.GENERIC,
                                   StripedLayout([0, 1]), factory)
        used_after_first = alloc.dimm(0).used_rows
        assert used_after_first > 0
        r2 = alloc.allocate_region("b", 1 << 22, DataClass.GENERIC,
                                   StripedLayout([0, 1]), factory)
        assert r2.mappings[0].row_base == used_after_first
        assert r2.base >= r1.base + r1.size

    def test_capacity_exhaustion(self):
        alloc = PoolAllocator()
        alloc.register_dimm(0, "d0", "sw0", is_cxlg=False, total_rows=2)
        factory = lambda dimm, row_base: RankInterleaveMapping(GEO, row_base=row_base)
        with pytest.raises(AllocationError):
            alloc.allocate_region("big", 1 << 30, DataClass.GENERIC,
                                  StripedLayout([0]), factory)

    def test_free_region(self):
        alloc = make_allocator()
        factory = lambda dimm, row_base: RankInterleaveMapping(GEO, row_base=row_base)
        alloc.allocate_region("a", 4096, DataClass.GENERIC,
                              StripedLayout([0]), factory)
        alloc.free_region("a")
        with pytest.raises(KeyError):
            alloc.region_map.by_name("a")


class TestPlacementPlanner:
    def test_naive_stripes_everything_lockstep(self):
        alloc = make_allocator()
        planner = PlacementPlanner(alloc, GEO, optimized=False)
        region = planner.fm_index("fm", 1024, 32)
        assert isinstance(region.layout, StripedLayout)
        assert set(region.layout.dimm_indices) == set(range(8))
        assert all(m.chips_per_group == 16 for m in region.mappings.values())

    def test_optimized_fm_replicates_and_uses_fine_grained(self):
        alloc = make_allocator()
        planner = PlacementPlanner(alloc, GEO, optimized=True,
                                   fine_grained_chips=1)
        hot = np.arange(1024)[::-1]
        region = planner.fm_index("fm", 1024, 32, hot_scores=hot)
        assert isinstance(region.layout, ReplicatedLayout)
        cxlg_mapping = region.mappings[0]  # dimm 0 is CXLG
        assert cxlg_mapping.chips_per_group == 1
        assert region.mappings[1].chips_per_group == 16

    def test_hot_blocks_go_to_cxlg(self):
        alloc = make_allocator()
        planner = PlacementPlanner(alloc, GEO, optimized=True,
                                   near_fraction=0.25)
        hot = np.zeros(100)
        hot[:10] = 1000  # blocks 0..9 are hot
        region = planner.fm_index("fm", 100, 32, hot_scores=hot)
        replica = region.layout.replicas["sw0"]
        for block in range(10):
            dimm, _ = replica.locate(block * 32)
            assert alloc.dimm(dimm).is_cxlg

    def test_optimized_without_cxlg_replicates_lockstep(self):
        alloc = make_allocator(cxlg_per_switch=0)
        planner = PlacementPlanner(alloc, GEO, optimized=True)
        region = planner.fm_index("fm", 256, 32)
        assert isinstance(region.layout, ReplicatedLayout)
        assert all(m.chips_per_group == 16 for m in region.mappings.values())

    def test_replicas_serve_local_switch(self):
        alloc = make_allocator(cxlg_per_switch=0)
        planner = PlacementPlanner(alloc, GEO, optimized=True)
        region = planner.hash_directory("dir", 4096)
        d_sw0, _ = region.layout.locate(0, requester="d0.2")
        d_sw1, _ = region.layout.locate(0, requester="d1.2")
        assert alloc.dimm(d_sw0).switch == "sw0"
        assert alloc.dimm(d_sw1).switch == "sw1"

    def test_bloom_homed_vs_global(self):
        alloc = make_allocator()
        planner = PlacementPlanner(alloc, GEO, optimized=True)
        homed = planner.bloom_filter("b1", 4096, home_switch="sw0")
        assert all(alloc.dimm(d).switch == "sw0"
                   for d in homed.layout.dimm_indices)
        global_ = planner.bloom_filter("b2", 4096, home_switch=None)
        assert set(global_.layout.dimm_indices) == set(range(8))

    def test_bloom_home_dimm_pins_single_dimm(self):
        alloc = make_allocator()
        planner = PlacementPlanner(alloc, GEO, optimized=False,
                                   baseline_fixed=True)
        region = planner.bloom_filter("b", 4096, home_dimm=3)
        assert region.layout.dimm_indices == (3,)

    def test_baseline_fixed_uses_fine_grained_striping(self):
        alloc = make_allocator()
        # Baselines: every DIMM is a customized, fine-grained DIMM.
        for d in alloc.all_dimms():
            alloc.dimm(d).is_cxlg = True
        planner = PlacementPlanner(alloc, GEO, optimized=False,
                                   baseline_fixed=True, fine_grained_chips=1)
        region = planner.fm_index("fm", 512, 32)
        assert isinstance(region.layout, StripedLayout)
        assert all(m.chips_per_group == 1 for m in region.mappings.values())

    def test_hash_locations_row_major_when_optimized(self):
        alloc = make_allocator(cxlg_per_switch=0)
        planner = PlacementPlanner(alloc, GEO, optimized=True)
        region = planner.hash_locations("loc", 1 << 16)
        mapping = next(iter(region.mappings.values()))
        coords = [mapping.map(a) for a in range(0, 2048, 256)]
        assert len({(c.rank, c.bank, c.row) for c in coords}) == 1

    def test_near_fraction_validation(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            PlacementPlanner(alloc, GEO, optimized=True, near_fraction=0.0)


class TestFrameworkProtocol:
    def test_allocate_success_and_failure(self):
        from repro.core import BeaconD
        from repro.core.config import BeaconConfig

        system = BeaconD(config=BeaconConfig().scaled(16))
        response = system.framework.allocate(
            AllocationRequest("app", "alg", "ds", 4096),
            lambda: system.planner.reference("ref", 4096),
        )
        assert response.success
        assert response.region is not None

        def failing():
            raise AllocationError("no space")

        response = system.framework.allocate(
            AllocationRequest("app", "alg", "ds", 4096), failing
        )
        assert not response.success
        assert "no space" in response.error

    def test_deallocate(self):
        from repro.core import BeaconD
        from repro.core.config import BeaconConfig

        system = BeaconD(config=BeaconConfig().scaled(16))
        system.framework.allocate(
            AllocationRequest("app", "alg", "ds", 4096),
            lambda: system.planner.reference("ref", 4096),
        )
        assert system.framework.deallocate("ref").success
        assert not system.framework.deallocate("ref").success

    def test_control_round_trip_delivers_response(self):
        from repro.core import BeaconD
        from repro.core.config import BeaconConfig

        system = BeaconD(config=BeaconConfig().scaled(16))
        responses = []
        system.framework.allocate(
            AllocationRequest("app", "alg", "ds", 4096),
            lambda: system.planner.reference("ref", 4096),
            on_response=responses.append,
        )
        system.engine.run()
        assert len(responses) == 1 and responses[0].success
