"""Tests for k-mer utilities and the counting Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.bloom import CountingBloomFilter
from repro.genomics.kmer import (
    canonical_kmer,
    int_to_kmer,
    iter_kmers,
    kmer_hashes,
    kmer_to_int,
    mix64,
)
from repro.genomics.kmer_counting import exact_counts
from repro.genomics.sequence import random_genome, reverse_complement

kmers = st.text(alphabet="ACGT", min_size=1, max_size=31)


class TestKmerCoding:
    def test_known_values(self):
        assert kmer_to_int("A") == 0
        assert kmer_to_int("T") == 3
        assert kmer_to_int("AC") == 1
        assert kmer_to_int("CA") == 4

    @given(kmers)
    def test_roundtrip(self, kmer):
        assert int_to_kmer(kmer_to_int(kmer), len(kmer)) == kmer

    def test_invalid_characters(self):
        with pytest.raises(ValueError):
            kmer_to_int("ACGN")

    def test_int_to_kmer_range(self):
        with pytest.raises(ValueError):
            int_to_kmer(4, 1)


class TestCanonical:
    @given(kmers)
    def test_canonical_is_min(self, kmer):
        canon = canonical_kmer(kmer)
        assert canon == min(kmer, reverse_complement(kmer))

    @given(kmers)
    def test_strand_independent(self, kmer):
        assert canonical_kmer(kmer) == canonical_kmer(reverse_complement(kmer))


class TestIterKmers:
    def test_counts_and_order(self):
        assert list(iter_kmers("ACGTA", 3, canonical=False)) == ["ACG", "CGT", "GTA"]

    def test_short_sequence_yields_nothing(self):
        assert list(iter_kmers("AC", 5)) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(iter_kmers("ACGT", 0))


class TestHashes:
    def test_mix64_is_deterministic_and_spread(self):
        values = {mix64(i) for i in range(1000)}
        assert len(values) == 1000

    def test_kmer_hashes_distinct(self):
        hs = kmer_hashes("ACGTACGTACGT", 4)
        assert len(set(hs)) == 4

    def test_hash_count_validation(self):
        with pytest.raises(ValueError):
            kmer_hashes("ACGT", 0)

    @given(kmers)
    def test_hashes_strand_independent(self, kmer):
        assert kmer_hashes(kmer, 3) == kmer_hashes(reverse_complement(kmer), 3)


class TestCountingBloomFilter:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0)
        with pytest.raises(ValueError):
            CountingBloomFilter(8, num_hashes=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(8, counter_bits=0)

    def test_insert_and_count(self):
        bloom = CountingBloomFilter(1 << 12)
        for _ in range(3):
            bloom.insert("ACGTACGTACGTACG")
        assert bloom.count("ACGTACGTACGTACG") >= 3
        assert bloom.contains("ACGTACGTACGTACG")

    def test_saturation(self):
        bloom = CountingBloomFilter(1 << 8, counter_bits=2)
        for _ in range(10):
            bloom.insert("ACGT")
        assert bloom.count("ACGT") == 3  # saturates at 2**2 - 1

    @settings(max_examples=20)
    @given(st.lists(kmers.filter(lambda s: len(s) == 9), min_size=1, max_size=50))
    def test_never_undercounts(self, inserted):
        bloom = CountingBloomFilter(1 << 14)
        for kmer in inserted:
            bloom.insert(kmer)
        truth = exact_counts(inserted, 9)
        for kmer, count in truth.items():
            assert bloom.count(kmer) >= count

    def test_merge_equals_union(self):
        a = CountingBloomFilter(1 << 10)
        b = CountingBloomFilter(1 << 10)
        a.insert("ACGTACGTA")
        b.insert("ACGTACGTA")
        b.insert("TTTTTTTTT")
        a.merge(b)
        assert a.count("ACGTACGTA") >= 2
        assert a.count("TTTTTTTTT") >= 1
        assert a.insertions == 3

    def test_merge_geometry_mismatch(self):
        a = CountingBloomFilter(1 << 10)
        b = CountingBloomFilter(1 << 9)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_sizing_helper(self):
        bloom = CountingBloomFilter.for_expected_items(1000, 0.01)
        assert bloom.num_counters >= 1000
        assert 1 <= bloom.num_hashes <= 16

    def test_sizing_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter.for_expected_items(0)
        with pytest.raises(ValueError):
            CountingBloomFilter.for_expected_items(10, 1.5)

    def test_size_bytes_packs_counters(self):
        bloom = CountingBloomFilter(1000, counter_bits=4)
        assert bloom.size_bytes == 500

    def test_load_factor(self):
        bloom = CountingBloomFilter(1 << 10)
        assert bloom.load_factor == 0.0
        bloom.insert("ACGTACGTA")
        assert bloom.load_factor > 0.0
