"""Tests for the CXL fabric: flits, links, packer, routing, access path."""

import pytest

from repro.cxl import (
    CommParams,
    FLIT_BYTES,
    IDEAL_LINK_PARAMS,
    Link,
    LinkParams,
    Message,
    MessageKind,
    PackedChannel,
)
from repro.cxl.topology import MemoryPool
from repro.dram import ChipInterleaveMapping, DimmGeometry, DimmKind, MemoryRequest
from repro.dram.request import AccessKind
from repro.sim import Engine
from repro.sim.component import Component

GEO = DimmGeometry()


class TestMessageWireMath:
    def test_small_payload_rounds_to_flit(self):
        m = Message(MessageKind.MEM_RESPONSE, payload_bytes=32, destination="d")
        assert m.unpacked_wire_bytes == FLIT_BYTES
        assert m.packed_wire_bytes == 34  # 32 + 2 B packed header

    def test_large_payload_multiple_flits(self):
        m = Message(MessageKind.MEM_RESPONSE, payload_bytes=200, destination="d")
        assert m.unpacked_wire_bytes == 256

    def test_request_header_cost(self):
        m = Message(MessageKind.MEM_REQUEST, payload_bytes=8, destination="d")
        assert m.packed_wire_bytes == 24

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            Message(MessageKind.MEM_REQUEST, payload_bytes=0, destination="d")


class TestLink:
    def _link(self, params):
        engine = Engine()
        root = Component(engine, "sys")
        return engine, Link(engine, "l", root, params)

    def test_serialization_and_latency(self):
        engine, link = self._link(LinkParams(bytes_per_cycle=8, latency_cycles=10))
        arrivals = []
        link.transfer(64, lambda: arrivals.append(engine.now))
        link.transfer(64, lambda: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [18, 26]  # 8 cycles serialize each, shared queue

    def test_ideal_link_is_instant(self):
        engine, link = self._link(IDEAL_LINK_PARAMS)
        arrivals = []
        for _ in range(5):
            link.transfer(10_000, lambda: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [0] * 5

    def test_energy_accounting(self):
        engine, link = self._link(LinkParams(4, 0, pj_per_byte=2.0))
        link.transfer(100, lambda: None)
        engine.run()
        assert link.stats.get("energy_pj") == 200.0

    def test_utilization(self):
        engine, link = self._link(LinkParams(bytes_per_cycle=1, latency_cycles=0))
        link.transfer(50, lambda: None)
        engine.run()
        assert link.utilization(100) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParams(bytes_per_cycle=0, latency_cycles=1)
        with pytest.raises(ValueError):
            LinkParams(bytes_per_cycle=1, latency_cycles=-1)
        engine, link = self._link(LinkParams(1, 0))
        with pytest.raises(ValueError):
            link.transfer(0, lambda: None)


class TestPackedChannel:
    def _channel(self, packing, bpc=8):
        engine = Engine()
        root = Component(engine, "sys")
        link = Link(engine, "l", root, LinkParams(bytes_per_cycle=bpc,
                                                  latency_cycles=2))
        chan = PackedChannel(engine, "c", root, link, packing=packing)
        return engine, link, chan

    def _msg(self, size, on_delivered):
        return Message(MessageKind.MEM_RESPONSE, payload_bytes=size,
                       destination="d", on_delivered=on_delivered)

    def test_unpacked_costs_whole_flits(self):
        engine, link, chan = self._channel(packing=False)
        got = []
        for _ in range(4):
            chan.send(self._msg(8, lambda m: got.append(m.msg_id)))
        engine.run()
        assert len(got) == 4
        assert link.stats.get("wire_bytes") == 4 * FLIT_BYTES

    def test_packing_reduces_wire_bytes_under_load(self):
        engine, link, chan = self._channel(packing=True)
        got = []
        for _ in range(8):
            chan.send(self._msg(8, lambda m: got.append(m.msg_id)))
        engine.run()
        assert len(got) == 8
        assert link.stats.get("wire_bytes") < 8 * FLIT_BYTES

    def test_every_packed_message_delivered_exactly_once(self):
        engine, link, chan = self._channel(packing=True)
        got = []
        for i in range(100):
            chan.send(self._msg(5 + i % 20, lambda m: got.append(m.msg_id)))
        engine.run()
        assert len(got) == 100
        assert len(set(got)) == 100

    def test_idle_link_flushes_immediately(self):
        engine, link, chan = self._channel(packing=True)
        arrivals = []
        chan.send(self._msg(8, lambda m: arrivals.append(engine.now)))
        engine.run()
        # One small message on an idle link: no packing delay beyond
        # serialization + latency.
        assert arrivals[0] <= 2 + FLIT_BYTES // 8 + 1

    def test_large_messages_bypass_packer(self):
        engine, link, chan = self._channel(packing=True)
        got = []
        chan.send(self._msg(128, lambda m: got.append(m.msg_id)))
        engine.run()
        assert got
        assert chan.stats.get("direct_messages") == 1

    def test_packing_efficiency_metric(self):
        engine, link, chan = self._channel(packing=True)
        for _ in range(16):
            chan.send(self._msg(8, None))
        engine.run()
        assert 0.0 < chan.packing_efficiency() <= 1.0


def build_pool(comm):
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, comm)
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    pool.fabric.add_switch("sw1")
    pool.add_dimm("d0.0", "sw0", DimmKind.CXLG)
    pool.add_dimm("d0.1", "sw0", DimmKind.UNMODIFIED_CXL)
    pool.add_dimm("d1.0", "sw1", DimmKind.UNMODIFIED_CXL)
    return engine, pool


class TestRouting:
    def test_same_switch_with_bias_avoids_host(self):
        _engine, pool = build_pool(CommParams(device_bias=True))
        route = pool.fabric.route("d0.0", "d0.1")
        assert not route.via_host
        assert route.hop_count == 3  # up, switch bus, down

    def test_same_switch_without_bias_detours(self):
        _engine, pool = build_pool(CommParams(device_bias=False))
        route = pool.fabric.route("d0.0", "d0.1", force_host=True)
        assert route.via_host
        assert route.hop_count == 7

    def test_cross_switch_always_via_host(self):
        _engine, pool = build_pool(CommParams(device_bias=True))
        route = pool.fabric.route("d0.0", "d1.0")
        assert route.via_host

    def test_switch_sourced_route(self):
        _engine, pool = build_pool(CommParams(device_bias=True))
        route = pool.fabric.route("sw0", "d0.1")
        assert route.hop_count == 2
        assert not route.via_host

    def test_self_route_is_empty(self):
        _engine, pool = build_pool(CommParams())
        assert pool.fabric.route("d0.0", "d0.0").hop_count == 0

    def test_turnaround_accounting(self):
        _engine, pool = build_pool(CommParams(device_bias=True))
        pool.fabric.route("d0.0", "d0.1")
        assert pool.fabric.switches["sw0"].stats.get("in_switch_turnarounds") == 1


class TestAccessPath:
    def _request(self, addr=0, size=32, kind=AccessKind.READ, dimm=1):
        mapping = ChipInterleaveMapping(GEO, chips_per_group=16)
        req = MemoryRequest(addr=addr, size=size, kind=kind)
        req.coord = mapping.map(addr)
        req.dimm_index = dimm
        return req

    def test_read_round_trip_completes(self):
        engine, pool = build_pool(CommParams(device_bias=True))
        done = []
        req = self._request()
        req.on_complete = lambda r: done.append(r)
        pool.access(req, "d0.0")
        engine.run()
        assert done and done[0].latency > 0

    def test_bias_faster_than_detour(self):
        def run(device_bias):
            engine, pool = build_pool(CommParams(device_bias=device_bias))
            done = []
            req = self._request()
            req.on_complete = lambda r: done.append(r)
            pool.access(req, "d0.0")
            engine.run()
            return done[0].latency

        assert run(True) < run(False)

    def test_untranslated_request_rejected(self):
        engine, pool = build_pool(CommParams())
        with pytest.raises(ValueError):
            pool.access(MemoryRequest(addr=0, size=8), "d0.0")

    def test_local_atomic_runs_read_and_write(self):
        engine, pool = build_pool(CommParams(device_bias=True))
        done = []
        req = self._request(kind=AccessKind.ATOMIC_RMW, dimm=0)
        req.on_complete = lambda r: done.append(r)
        pool.access(req, "d0.0")
        engine.run()
        assert done
        mc = pool.controllers[0]
        assert mc.stats.get("issued") == 2  # read + write

    def test_remote_atomic_requires_engine(self):
        engine, pool = build_pool(CommParams(device_bias=True))
        req = self._request(kind=AccessKind.ATOMIC_RMW, dimm=1)
        with pytest.raises(RuntimeError, match="atomic engine"):
            pool.access(req, "d0.0")
        engine.run()

    def test_idealized_comm_is_faster(self):
        def run(comm):
            engine, pool = build_pool(comm)
            done = []
            for i in range(50):
                req = self._request(addr=i * 64, size=64)
                req.on_complete = lambda r: done.append(r)
                pool.access(req, "d0.0")
            engine.run()
            assert len(done) == 50
            return engine.now

        real = run(CommParams(device_bias=True))
        ideal = run(CommParams(device_bias=True).idealized())
        assert ideal < real
