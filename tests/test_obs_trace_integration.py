"""End-to-end observability tests: traced figure campaigns, the trace CLI,
per-job trace collection, and the tracing-changes-nothing guarantee."""

import json
import os

import pytest

from repro.__main__ import main
from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments.parallel import SweepJob, trace_path_for
from repro.obs import TraceSession, load_trace, trace_layers
from repro.perf.harness import BENCH_FIGURES, bench_figures, fingerprint


def _run_traced(figure, **session_kwargs):
    session = TraceSession(**session_kwargs)
    with session:
        result = BENCH_FIGURES[figure](
            ExperimentScale.quick(), runner=ParallelSweepRunner(jobs=1)
        )
    return session, result


class TestTracedCampaign:
    def test_fig16_covers_all_four_layers(self):
        session, _ = _run_traced("fig16")
        rec = session.recorder
        assert rec.recorded > 1000
        assert rec.dropped == 0
        assert rec.layers() >= {"dram", "cxl", "ndp", "mem"}

    def test_trace_json_is_valid_trace_event_format(self, tmp_path):
        session, _ = _run_traced("fig16")
        path = str(tmp_path / "trace.json")
        session.save(path)
        with open(path) as handle:
            payload = json.load(handle)       # plain json-loadable
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ns"
        for event in events:
            assert "ph" in event and "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert "ts" in event and "dur" in event
                assert event["dur"] >= 0
            elif event["ph"] != "M":
                assert "ts" in event
        assert trace_layers(events) >= {"dram", "cxl", "ndp", "mem"}

    def test_category_filter_and_limit_apply_end_to_end(self):
        session, _ = _run_traced("fig16", categories={"dram"}, limit=100)
        rec = session.recorder
        assert rec.layers() == {"dram"}
        assert rec.recorded == 100
        assert rec.dropped > 0

    def test_metrics_sampler_collects_along_the_run(self, tmp_path):
        session, _ = _run_traced("fig16", metrics_interval=10_000)
        assert session.sampler.sample_count > 0
        metrics = tmp_path / "m.csv"
        session.save(str(tmp_path / "t.json"), metrics_path=str(metrics))
        header = metrics.read_text().splitlines()[0]
        assert header == "cycle,pid,path,key,value"


class TestTracingIsObservational:
    @pytest.mark.parametrize("figure", ["fig16", "fig13"])
    def test_results_bit_identical_with_tracing_on(self, figure):
        plain = BENCH_FIGURES[figure](
            ExperimentScale.quick(), runner=ParallelSweepRunner(jobs=1)
        )
        _session, traced = _run_traced(figure)
        assert fingerprint(plain) == fingerprint(traced)

    def test_bench_trace_verify_passes(self):
        results = bench_figures(
            figures=["fig16"], verify=False, trace_verify=True
        )
        assert results[0].name == "fig16"


class TestTraceCli:
    def test_trace_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.csv"
        rc = main(["trace", "fig16",
                   "--trace-out", str(trace),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        events = load_trace(str(trace))
        assert trace_layers(events) >= {"dram", "cxl", "ndp", "mem"}
        assert metrics.exists()
        out = capsys.readouterr().out
        assert "events recorded" in out
        assert "top components" in out

    def test_trace_filter_flag(self, tmp_path):
        trace = tmp_path / "t.json"
        rc = main(["trace", "fig16", "--trace-out", str(trace),
                   "--trace-filter", "cxl,dram", "--trace-limit", "1000"])
        assert rc == 0
        events = load_trace(str(trace))
        assert trace_layers(events) <= {"cxl", "dram"}
        assert sum(1 for e in events if e.get("ph") != "M") <= 1000

    def test_trace_requires_known_figure(self):
        with pytest.raises(SystemExit):
            main(["trace"])
        with pytest.raises(SystemExit):
            main(["trace", "nope"])

    def test_trace_rejects_unknown_category(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "fig16", "--trace-out",
                  str(tmp_path / "t.json"), "--trace-filter", "gpu"])

    def test_target_invalid_outside_trace(self):
        with pytest.raises(SystemExit):
            main(["fig16", "fig13"])


def _traced_sweep_point(scale):
    from repro.experiments import fig16_prealignment

    return fig16_prealignment.run(scale, runner=ParallelSweepRunner(jobs=1))


class TestPerJobTraces:
    def test_trace_dir_writes_one_valid_trace_per_job(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        runner = ParallelSweepRunner(jobs=1, trace_dir=trace_dir)
        jobs = [
            SweepJob("point/a", _traced_sweep_point, (ExperimentScale.quick(),)),
            SweepJob("point/b", _traced_sweep_point, (ExperimentScale.quick(),)),
        ]
        results = runner.run(jobs)
        assert list(results) == ["point/a", "point/b"]
        for job in jobs:
            path = trace_path_for(trace_dir, job.key)
            assert os.sep not in os.path.relpath(path, trace_dir)
            events = load_trace(path)
            assert trace_layers(events) >= {"dram", "cxl", "ndp", "mem"}

    def test_env_var_enables_trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "envtraces"))
        assert ParallelSweepRunner(jobs=1).trace_dir == str(
            tmp_path / "envtraces"
        )
        monkeypatch.delenv("REPRO_TRACE_DIR")
        assert ParallelSweepRunner(jobs=1).trace_dir is None
