"""Tests for DNA sequence primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genomics.sequence import (
    decode,
    encode,
    complement,
    mutate,
    random_genome,
    reverse_complement,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_known_encoding(self):
        assert list(encode("ACGT")) == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert list(encode("acgt")) == [0, 1, 2, 3]

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="non-ACGT"):
            encode("ACGN")

    def test_decode_range_check(self):
        with pytest.raises(ValueError):
            decode(np.array([4], dtype=np.uint8))

    @given(dna)
    def test_roundtrip(self, seq):
        assert decode(encode(seq)) == seq


class TestComplement:
    def test_bases(self):
        assert complement("A") == "T"
        assert complement("g") == "C"

    def test_unknown_base(self):
        with pytest.raises(ValueError):
            complement("X")

    @given(dna)
    def test_reverse_complement_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_known_revcomp(self):
        assert reverse_complement("AACGTT") == "AACGTT"
        assert reverse_complement("ACCT") == "AGGT"


class TestRandomGenome:
    def test_deterministic(self):
        assert random_genome(500, seed=7) == random_genome(500, seed=7)

    def test_seed_changes_output(self):
        assert random_genome(500, seed=1) != random_genome(500, seed=2)

    def test_length(self):
        assert len(random_genome(123, seed=0)) == 123
        assert random_genome(0, seed=0) == ""

    def test_gc_content_respected(self):
        genome = random_genome(100_000, seed=3, gc_content=0.3)
        gc = sum(1 for b in genome if b in "GC") / len(genome)
        assert 0.27 < gc < 0.33

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_genome(-1)
        with pytest.raises(ValueError):
            random_genome(10, gc_content=1.5)


class TestMutate:
    def test_zero_rate_identity(self):
        genome = random_genome(1000, seed=1)
        assert mutate(genome, 0.0) == genome

    def test_full_rate_changes_every_base(self):
        genome = random_genome(1000, seed=1)
        mutated = mutate(genome, 1.0, seed=2)
        assert all(a != b for a, b in zip(genome, mutated))

    def test_rate_approximate(self):
        genome = random_genome(50_000, seed=4)
        mutated = mutate(genome, 0.1, seed=5)
        diff = sum(1 for a, b in zip(genome, mutated) if a != b) / len(genome)
        assert 0.08 < diff < 0.12

    def test_deterministic(self):
        genome = random_genome(1000, seed=1)
        assert mutate(genome, 0.05, seed=9) == mutate(genome, 0.05, seed=9)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            mutate("ACGT", 1.5)
