"""Tests for the fleet-telemetry layer (repro.obs.telemetry).

Four pieces, four contracts: the metrics registry must snapshot
deterministically and merge worker deltas exactly; the run ledger must
round-trip every lifecycle event and summarize a campaign correctly; the
progress line must stay off stdout; and the bench regression gate must
fail on a synthetic regression, pass on the committed baseline, and stay
byte-deterministic.  The capstone test proves telemetry is observational:
a real sweep's fingerprint is bit-identical with the ledger and progress
line enabled.
"""

import io
import json
import os
from dataclasses import replace

import pytest

from repro.core.config import Algorithm
from repro.experiments import ExperimentScale, ParallelSweepRunner, SweepJob
from repro.experiments.runner import run_step_sweep
from repro.obs.telemetry import (
    DEFAULT_THRESHOLD,
    CompareError,
    LEDGER_EVENTS,
    LedgerError,
    LedgerWriter,
    MetricsRegistry,
    ProgressLine,
    compare_bench,
    diff_snapshots,
    load_bench_payload,
    param_digest,
    read_ledger,
    render_compare,
    render_status,
    summarize_ledger,
    traceback_digest,
    worker_id,
)
from repro.perf import fingerprint


# -- metrics registry --------------------------------------------------------------


def _loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "jobs by status", labels=("status",))
    jobs.labels(status="finished").inc(3)
    jobs.labels(status="failed").inc()
    registry.gauge("depth", "queue depth").set(7)
    hist = registry.histogram("wall_s", "wall time", buckets=(1.0, 10.0))
    for value in (0.5, 0.6, 5.0, 50.0):
        hist.observe(value)
    return registry


def test_snapshot_is_deterministic_and_sorted():
    a, b = _loaded_registry(), _loaded_registry()
    assert a.snapshot() == b.snapshot()
    assert a.to_json() == b.to_json()
    names = [(row["name"], tuple(tuple(p) for p in row["labels"]))
             for row in a.snapshot()]
    assert names == sorted(names)


def test_counter_labels_and_rejections():
    registry = MetricsRegistry()
    counter = registry.counter("c", "help", labels=("kind",))
    counter.labels(kind="x").inc(2)
    assert counter.labels(kind="x").value == 2
    with pytest.raises(ValueError, match="label mismatch"):
        counter.labels(wrong="x")
    with pytest.raises(ValueError, match="counters only go up"):
        counter.labels(kind="x").inc(-1)
    # Re-registration with a different shape must raise, same shape returns
    # the same instrument.
    assert registry.counter("c", "help", labels=("kind",)) is counter
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("c", "help")
    with pytest.raises(ValueError, match="labels"):
        registry.counter("c", "help", labels=("other",))


def test_histogram_buckets_are_cumulative_in_prometheus_text():
    registry = _loaded_registry()
    text = registry.render_prometheus()
    assert "# TYPE jobs_total counter" in text
    assert "# TYPE wall_s histogram" in text
    assert 'jobs_total{status="finished"} 3' in text
    assert 'wall_s_bucket{le="1"} 2' in text
    assert 'wall_s_bucket{le="10"} 3' in text
    assert 'wall_s_bucket{le="+Inf"} 4' in text
    assert "wall_s_count 4" in text
    assert "wall_s_sum 56.1" in text


def test_merge_snapshot_sums_counters_and_histograms():
    parent = _loaded_registry()
    worker = _loaded_registry()
    parent.merge_snapshot(worker.snapshot())
    merged = {
        (row["name"], tuple(tuple(p) for p in row["labels"])): row
        for row in parent.snapshot()
    }
    assert merged[("jobs_total", (("status", "finished"),))]["value"] == 6
    assert merged[("wall_s", ())]["count"] == 8
    assert merged[("wall_s", ())]["sum"] == pytest.approx(112.2)
    # Gauges are levels: last writer wins, not a sum.
    assert merged[("depth", ())]["value"] == 7


def test_label_declaration_order_is_irrelevant():
    """Series keys sort label names, so two declaration orders — or a
    worker delta, which always arrives sorted — must resolve to one
    instrument instead of raising a label mismatch on merge."""
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "h", labels=("backend", "tenants", "arrival"))
    gauge.labels(backend="d", tenants="3", arrival="poisson").set(5)
    assert registry.gauge("g", "h",
                          labels=("arrival", "backend", "tenants")) is gauge
    # The full fork-inherited-gauge path: merge a snapshot of this
    # registry (sorted label names) back into itself.
    registry.merge_snapshot(registry.snapshot())
    (row,) = registry.snapshot()
    assert row["value"] == 5


def test_diff_snapshots_ships_only_activity():
    registry = MetricsRegistry()
    counter = registry.counter("jobs", "h")
    counter.inc(2)
    before = registry.snapshot()
    assert diff_snapshots(before, registry.snapshot()) == []
    counter.inc(3)
    (delta,) = diff_snapshots(before, registry.snapshot())
    assert delta["value"] == 3


# -- run ledger --------------------------------------------------------------------


def test_ledger_round_trip_and_merge(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    with LedgerWriter(path) as writer:
        writer.emit("campaign-begin", scenario="t", jobs=1, jobs_config=1)
        writer.emit("queued", job="a", params="00")
        # Worker-origin events keep their stamps but get the parent's seq.
        writer.merge([
            {"event": "started", "job": "a", "worker": "w1", "t_wall": 5.0},
            {"event": "finished", "job": "a", "worker": "w1", "t_wall": 7.5,
             "wall_s": 2.5, "index_cache": {"hits": 1}},
        ])
        writer.emit("campaign-end", scenario="t", finished=1, failed=0,
                    wall_s=2.5)
    events = read_ledger(path)
    assert [e["event"] for e in events] == [
        "campaign-begin", "queued", "started", "finished", "campaign-end",
    ]
    assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]
    finished = events[3]
    assert finished["worker"] == "w1" and finished["t_wall"] == 7.5


def test_ledger_rejects_unregistered_event_names(tmp_path):
    writer = LedgerWriter(str(tmp_path / "runs.jsonl"))
    with pytest.raises(LedgerError, match="unknown ledger event"):
        writer.emit("job-exploded", job="a")  # repro: allow[telemetry-event-registry] -- the rejection under test
    writer.close()


def test_read_ledger_rejects_foreign_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "other/1", "event": "queued"}\n')
    with pytest.raises(LedgerError, match="schema"):
        read_ledger(str(path))
    path.write_text("not json\n")
    with pytest.raises(LedgerError, match="not valid JSON"):
        read_ledger(str(path))


def test_summarize_ledger_states_and_eta():
    events = [
        {"event": "campaign-begin", "scenario": "fig", "t_wall": 0.0},
        {"event": "queued", "job": "a", "t_wall": 0.0},
        {"event": "queued", "job": "b", "t_wall": 0.0},
        {"event": "queued", "job": "c", "t_wall": 0.0},
        {"event": "started", "job": "a", "t_wall": 1.0},
        {"event": "finished", "job": "a", "worker": "w1", "t_wall": 4.0,
         "wall_s": 3.0, "index_cache": {"hits": 2, "misses": 1}},
        {"event": "started", "job": "b", "t_wall": 4.0},
    ]
    summary = summarize_ledger(events)
    assert summary.total_jobs == 3
    assert summary.finished == 1
    assert summary.running == 1
    assert summary.queued == 1
    assert summary.elapsed_s == 4.0
    assert summary.throughput_jobs_s == pytest.approx(0.25)
    assert summary.eta_s == pytest.approx(8.0)   # 2 remaining / 0.25
    assert summary.slowest == [("a", 3.0)]
    assert summary.per_worker == {"w1": 1}
    assert summary.index_cache == {"hits": 2, "misses": 1}
    assert summary.scenarios == ["fig"]
    text = render_status(summary)
    assert "3 total" in text and "1 finished" in text and "eta" in text
    # to_dict is the status --json payload and must round-trip as JSON.
    assert json.loads(json.dumps(summary.to_dict())) == summary.to_dict()


def test_digests_and_worker_id_are_stable():
    assert param_digest("m.f", (1, 2), {"b": 3}) == \
        param_digest("m.f", (1, 2), {"b": 3})
    assert param_digest("m.f", (1, 2), {}) != param_digest("m.f", (2, 1), {})
    assert traceback_digest("tb") == traceback_digest("tb")
    me = worker_id()
    assert me == worker_id() and f"pid{os.getpid()}" in me
    assert len(LEDGER_EVENTS) == 7


# -- progress line -----------------------------------------------------------------


def test_progress_line_writes_only_to_its_stream(capsys):
    stream = io.StringIO()
    line = ProgressLine(total=3, stream=stream)
    line.update("a", 0.5)
    line.update("b", 0.7, failed=True)
    line.close()
    text = stream.getvalue()
    assert "2/3 jobs" in text
    assert "1 failed" in text
    assert "last b" in text
    assert text.endswith("\n")
    captured = capsys.readouterr()
    assert captured.out == ""        # never stdout


def test_progress_line_disabled_is_a_no_op():
    stream = io.StringIO()
    line = ProgressLine(total=2, stream=stream, enabled=False)
    line.update("a", 0.1)
    line.close()
    assert stream.getvalue() == ""
    assert line.done == 1            # counting still works


# -- bench regression gate ---------------------------------------------------------


def _bench_payload(figures):
    return {
        "schema": "repro-bench/2",
        "figures": {
            name: {"events_per_sec": eps, "wall_s": wall}
            for name, (eps, wall) in figures.items()
        },
    }


def test_compare_flags_synthetic_regression():
    old = _bench_payload({"fig12": (1000.0, 10.0), "fig14": (500.0, 5.0)})
    # fig12 at 50% of baseline: well past the 25% regression margin.
    new = _bench_payload({"fig12": (500.0, 20.0), "fig14": (510.0, 4.9)})
    report = compare_bench(old, new, threshold=DEFAULT_THRESHOLD)
    assert report["ok"] is False
    assert report["regressions"] == ["fig12"]
    verdicts = {row["name"]: row["verdict"] for row in report["figures"]}
    assert verdicts == {"fig12": "regression", "fig14": "ok"}
    (fig12,) = [r for r in report["figures"] if r["name"] == "fig12"]
    assert fig12["throughput_ratio"] == pytest.approx(0.5)
    assert fig12["wall_delta_s"] == pytest.approx(10.0)
    assert "REGRESSION: fig12" in render_compare(report)


def test_compare_verdict_vocabulary():
    old = _bench_payload({
        "gone": (100.0, 1.0), "same": (100.0, 1.0),
        "faster": (100.0, 1.0), "pooled": (0.0, 1.0),
    })
    new = _bench_payload({
        "same": (101.0, 1.0), "faster": (200.0, 0.5),
        "pooled": (0.0, 1.0), "added": (50.0, 2.0),
    })
    report = compare_bench(old, new)
    verdicts = {row["name"]: row["verdict"] for row in report["figures"]}
    assert verdicts == {
        "gone": "removed", "same": "ok", "faster": "improved",
        "pooled": "skipped", "added": "new",
    }
    # new/removed/skipped never fail the gate.
    assert report["ok"] is True


def test_compare_is_deterministic_and_threshold_checked():
    old = _bench_payload({"a": (10.0, 1.0)})
    new = _bench_payload({"a": (9.0, 1.1)})
    assert compare_bench(old, new) == compare_bench(old, new)
    with pytest.raises(CompareError, match="threshold"):
        compare_bench(old, new, threshold=0.0)
    with pytest.raises(CompareError, match="threshold"):
        compare_bench(old, new, threshold=1.5)


def test_load_bench_payload_rejects_foreign_files(tmp_path):
    missing = str(tmp_path / "nope.json")
    with pytest.raises(CompareError, match="cannot read"):
        load_bench_payload(missing)
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "repro-profile/1"}')
    with pytest.raises(CompareError, match="not a bench payload"):
        load_bench_payload(str(bad))


def test_committed_baseline_passes_against_itself():
    """The gate's CI wiring must be self-consistent: the committed
    baseline compared against itself is all-ok by construction."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline = os.path.join(root, "BENCH_results.json")
    payload = load_bench_payload(baseline)
    report = compare_bench(payload, payload)
    assert report["ok"] is True
    assert report["regressions"] == []
    assert all(row["verdict"] in ("ok", "skipped")
               for row in report["figures"])


# -- CLI ---------------------------------------------------------------------------


def _write_minimal_ledger(path):
    with LedgerWriter(path) as writer:
        writer.emit("campaign-begin", scenario="t", jobs=1, jobs_config=1)
        writer.emit("queued", job="a", params="00")
        writer.emit("started", job="a")
        writer.emit("finished", job="a", wall_s=1.0, params="00",
                    index_cache={}, fingerprint="00")
        writer.emit("campaign-end", scenario="t", finished=1, failed=0,
                    wall_s=1.0)


def test_status_cli_text_and_json(tmp_path, capsys):
    from repro.__main__ import main

    path = str(tmp_path / "runs.jsonl")
    _write_minimal_ledger(path)
    assert main(["status", path]) == 0
    assert "1 finished" in capsys.readouterr().out
    assert main(["status", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["finished"] == 1 and payload["total_jobs"] == 1


def test_status_cli_unreadable_ledger_exits_2(tmp_path, capsys):
    from repro.__main__ import main

    assert main(["status", str(tmp_path / "missing.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_bench_compare_cli_gate(tmp_path, capsys):
    """--compare OLD --against NEW compares without benching: exit 1 on a
    synthetic >=25% regression, 0 on identical payloads, 2 on garbage."""
    from repro.__main__ import main

    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_bench_payload({"fig12": (1000.0, 10.0)})))
    new.write_text(json.dumps(_bench_payload({"fig12": (600.0, 16.0)})))
    assert main(["bench", "--compare", str(old), "--against", str(new)]) == 1
    assert "regression" in capsys.readouterr().out
    assert main(["bench", "--compare", str(old), "--against", str(old)]) == 0
    assert "no figure below threshold" in capsys.readouterr().out
    # A looser threshold lets the same delta through.
    assert main(["bench", "--compare", str(old), "--against", str(new),
                 "--threshold", "0.5"]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["bench", "--compare", str(bad), "--against", str(new)]) == 2
    assert "error:" in capsys.readouterr().err


def test_against_without_compare_is_a_usage_error(tmp_path):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["bench", "--against", str(tmp_path / "x.json")])


# -- telemetry is observational ----------------------------------------------------


def _seeding_job(scale):
    spec = scale.seeding_datasets()[0]
    return SweepJob(
        key=spec.name,
        func=run_step_sweep,
        args=("beacon-d", Algorithm.FM_SEEDING,
              scale.seeding_workload(spec), scale),
        kwargs={"with_ideal": False},
    )


def test_fingerprint_identical_with_telemetry_enabled(tmp_path):
    """The acceptance criterion: a real sweep's result fingerprint is
    bit-identical with the ledger and progress line on."""
    scale = replace(ExperimentScale.quick(),
                    genome_scale=0.03, read_scale=0.5, num_datasets=1)
    bare = ParallelSweepRunner(jobs=1).run([_seeding_job(scale)])
    instrumented_runner = ParallelSweepRunner(
        jobs=1,
        ledger_path=str(tmp_path / "runs.jsonl"),
        progress=True,
        progress_stream=io.StringIO(),
    )
    instrumented = instrumented_runner.run([_seeding_job(scale)],
                                           label="verify")
    assert fingerprint(bare) == fingerprint(instrumented)
    # ...and the telemetry actually recorded the run.
    events = read_ledger(str(tmp_path / "runs.jsonl"))
    finished = [e for e in events if e["event"] == "finished"]
    assert len(finished) == 1
    assert finished[0]["fingerprint"]
    assert finished[0]["wall_s"] > 0
