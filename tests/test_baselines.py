"""Tests for the baseline systems: MEDAL, NEST, and the CPU model."""

import pytest

from repro.baselines import CpuConfig, CpuModel, Medal, Nest
from repro.core import Algorithm, BeaconConfig, BeaconD, OptimizationFlags
from repro.dram.dimm import DimmKind
from repro.genomics.workloads import (
    SEEDING_DATASETS,
    make_kmer_workload,
    make_seeding_workload,
)

CFG = BeaconConfig().scaled(16)


@pytest.fixture(scope="module")
def workload():
    return make_seeding_workload(SEEDING_DATASETS[0], scale=0.06,
                                 read_scale=2.0)


class TestDdrTopology:
    def test_medal_structure(self):
        medal = Medal(config=CFG)
        assert medal.variant == "medal"
        assert medal.pe_hw_key == "MEDAL"
        assert len(medal.pool.dimms) == CFG.total_dimms
        # Every baseline DIMM is customized (fine-grained capable).
        assert all(d.kind is DimmKind.DDR_CUSTOM for d in medal.pool.dimms)
        # One NDP module per DIMM, all wired for task migration.
        assert len(medal.ndp_modules) == CFG.total_dimms
        assert all(m.migration_peers is not None for m in medal.ndp_modules)

    def test_pe_population_matches_beacon_d(self):
        medal = Medal(config=CFG)
        beacon = BeaconD(config=CFG)
        assert (sum(m.pes.num_pes for m in medal.ndp_modules)
                == sum(m.pes.num_pes for m in beacon.ndp_modules))

    def test_baseline_planner_is_fixed_scheme(self):
        medal = Medal(config=CFG)
        assert medal.planner.baseline_fixed
        assert not medal.planner.optimized


class TestMedalBehaviour:
    def test_migrations_happen(self, workload):
        medal = Medal(config=CFG)
        medal.run_fm_seeding(workload)
        migrations = sum(m.stats.get("task_migrations", 0)
                         for m in medal.ndp_modules)
        assert migrations > 0
        # After migration, accesses are mostly DIMM-local (a backward-search
        # step reads two occ blocks; migration co-locates the first, the
        # second may still be remote).
        local = sum(m.stats.get("local_requests", 0) for m in medal.ndp_modules)
        total = sum(m.stats.get("mem_requests", 0) for m in medal.ndp_modules)
        assert local / total > 0.75

    def test_idealized_twin_is_faster(self, workload):
        real = Medal(config=CFG).run_fm_seeding(workload)
        ideal = Medal(config=CFG.idealized()).run_fm_seeding(workload)
        assert ideal.runtime_cycles < real.runtime_cycles


class TestNestBehaviour:
    def test_filters_are_dimm_local(self):
        kmer = make_kmer_workload(scale=0.08, read_scale=0.3)
        nest = Nest(config=CFG)
        nest.run_kmer_counting(kmer, k=13, num_counters=1 << 14)
        # Every Bloom region sits on exactly one DIMM (NEST's design).
        for region in nest.allocator.region_map:
            if region.name.startswith("bloom"):
                assert len(region.layout.dimm_indices) == 1
        # All counter traffic stayed local.
        local = sum(m.stats.get("local_requests", 0) for m in nest.ndp_modules)
        total = sum(m.stats.get("mem_requests", 0) for m in nest.ndp_modules)
        assert local / total > 0.99

    def test_multi_pass_processes_input_twice(self):
        kmer = make_kmer_workload(scale=0.08, read_scale=0.3)
        nest = Nest(config=CFG)
        report = nest.run_kmer_counting(kmer, k=13, num_counters=1 << 14)
        assert report.tasks_completed == 2 * len(kmer.reads)


class TestCpuModel:
    def test_threads_speed_things_up(self, workload):
        slow = CpuModel(CpuConfig(threads=1)).run_fm_seeding(workload)
        fast = CpuModel(CpuConfig(threads=48)).run_fm_seeding(workload)
        assert fast.runtime_ns < slow.runtime_ns

    def test_bandwidth_floor_binds_for_cheap_ops(self, workload):
        config = CpuConfig()
        cheap = CpuConfig(threads=10_000)  # compute time -> 0
        report = CpuModel(cheap).run_fm_seeding(workload)
        assert report.extra["bandwidth_bound"] == 1.0

    def test_energy_split(self, workload):
        report = CpuModel().run_fm_seeding(workload)
        assert report.energy_comm_nj == 0.0
        assert report.energy_dram_nj > 0
        assert report.energy_compute_nj > report.energy_dram_nj

    def test_calibration_anchor_is_consistent(self, workload):
        """MEDAL lands in the neighbourhood of its published CPU gap
        (order 100x) under the calibrated constants."""
        cpu = CpuModel().run_fm_seeding(workload)
        medal = Medal(config=CFG).run_fm_seeding(workload)
        ratio = cpu.runtime_ns / medal.runtime_ns
        assert 10 < ratio < 2000

    def test_all_paper_algorithms_covered(self, workload):
        cpu = CpuModel()
        for algorithm in Algorithm:
            if algorithm is Algorithm.CUSTOM:
                continue  # extensions have no software baseline
            report = cpu.run_algorithm(algorithm, workload)
            assert report.algorithm == algorithm.value
