"""Tests for the DRAM energy model and per-chip access accounting."""

import pytest

from repro.dram.chip import ChipAccessCounters
from repro.dram.power import DramEnergyModel, DramEnergyParams
from repro.dram.timing import DimmGeometry
from repro.sim.stats import StatScope

GEO = DimmGeometry()


class TestEnergyModel:
    def _model(self):
        stats = StatScope("dimm")
        return stats, DramEnergyModel(stats, total_chips=64, tck_ns=1.25)

    def test_activation_energy_scales_with_chips(self):
        stats, model = self._model()
        model.on_activate(chips=1)
        one = stats.get("energy_act_nj")
        model.on_activate(chips=16)
        assert stats.get("energy_act_nj") == pytest.approx(17 * one)

    def test_write_bursts_cost_more_than_reads(self):
        stats, model = self._model()
        model.on_burst(chips=8, bursts=4, is_write=False)
        reads = stats.get("energy_rw_nj")
        stats2, model2 = self._model()
        model2.on_burst(chips=8, bursts=4, is_write=True)
        assert stats2.get("energy_rw_nj") > reads

    def test_background_is_idempotent(self):
        stats, model = self._model()
        model.finalize(10_000)
        first = stats.get("energy_background_nj")
        model.finalize(10_000)
        assert stats.get("energy_background_nj") == first
        assert first > 0

    def test_total(self):
        stats, model = self._model()
        model.on_activate(4)
        model.on_burst(4, 2, False)
        model.finalize(1000)
        assert model.total_nj() == pytest.approx(
            stats.get("energy_act_nj") + stats.get("energy_rw_nj")
            + stats.get("energy_background_nj")
        )

    def test_params_are_physically_ordered(self):
        p = DramEnergyParams()
        # An activation costs much more than a column burst per chip.
        assert p.act_pre_nj_per_chip > p.read_burst_nj_per_chip
        assert p.write_burst_nj_per_chip >= p.read_burst_nj_per_chip


class TestChipAccessCounters:
    def test_record_credits_whole_group(self):
        counters = ChipAccessCounters(GEO)
        counters.record(rank=0, chip_group=1, chips_per_group=4, bursts=3)
        per_chip = counters.per_chip()
        assert per_chip[4:8] == [3, 3, 3, 3]
        assert sum(per_chip) == 12

    def test_normalized_mean_is_one(self):
        counters = ChipAccessCounters(GEO)
        for group in range(16):
            counters.record(0, group, 1, bursts=group + 1)
        normalized = counters.normalized()
        assert sum(normalized) / len(normalized) == pytest.approx(1.0)

    def test_imbalance_zero_when_uniform(self):
        counters = ChipAccessCounters(GEO)
        for group in range(16):
            counters.record(0, group, 1, bursts=5)
        assert counters.imbalance() == pytest.approx(0.0)

    def test_imbalance_positive_when_skewed(self):
        counters = ChipAccessCounters(GEO)
        counters.record(0, 0, 1, bursts=100)
        counters.record(0, 1, 1, bursts=1)
        assert counters.imbalance() > 1.0

    def test_empty_counters(self):
        counters = ChipAccessCounters(GEO)
        assert counters.imbalance() == 0.0
        assert counters.normalized() == [0.0] * 16

    def test_ranks_summed(self):
        counters = ChipAccessCounters(GEO)
        counters.record(0, 0, 1, bursts=2)
        counters.record(3, 0, 1, bursts=5)
        assert counters.per_chip()[0] == 7
