"""Unit tests for the region accessors and step generators in core.task."""

import pytest

from repro.core.config import Algorithm, PE_COMPUTE_CYCLES
from repro.core.task import (
    BloomAccessor,
    ComputeStep,
    FmIndexAccessor,
    HashIndexAccessor,
    MemStep,
    ReferenceAccessor,
    fm_seeding_steps,
    hash_seeding_steps,
    kmer_insert_steps,
    kmer_query_steps,
)
from repro.dram.request import AccessKind, DataClass
from repro.genomics.bloom import CountingBloomFilter
from repro.genomics.fm_index import FMIndex
from repro.genomics.hash_index import HashIndex
from repro.genomics.sequence import random_genome
from repro.memmgmt.regions import Region, StripedLayout


def region(name, base, size):
    return Region(name=name, base=base, size=size,
                  data_class=DataClass.GENERIC,
                  layout=StripedLayout([0]), mappings={})


class TestFmAccessorAndSteps:
    def setup_method(self):
        self.genome = random_genome(3000, seed=1)
        self.fm = FMIndex(self.genome)
        self.region = region("fm", base=1 << 20, size=self.fm.size_bytes)
        self.accessor = FmIndexAccessor(self.fm, self.region)

    def test_block_addresses_offset_by_region_base(self):
        assert self.accessor.block_addr(0) == 1 << 20
        assert self.accessor.block_addr(3) == (1 << 20) + 96

    def test_steps_alternate_compute_and_memory(self):
        steps = list(fm_seeding_steps(self.accessor, self.genome[100:160]))
        assert isinstance(steps[0], ComputeStep)
        assert steps[0].cycles == PE_COMPUTE_CYCLES[Algorithm.FM_SEEDING]
        assert isinstance(steps[1], MemStep)
        for step in steps:
            if isinstance(step, MemStep):
                for access in step.accesses:
                    assert access.size == FMIndex.BLOCK_BYTES
                    assert access.data_class is DataClass.FM_INDEX_BLOCK
                    assert access.addr >= self.region.base

    def test_step_count_matches_trace(self):
        read = self.genome[500:560]
        trace_steps = sum(1 for _ in self.fm.search_trace(read))
        generated = list(fm_seeding_steps(self.accessor, read))
        assert len(generated) == 2 * trace_steps


class TestHashAccessorAndSteps:
    def setup_method(self):
        self.genome = random_genome(2000, seed=2)
        self.index = HashIndex(self.genome, k=13, stride=1, num_buckets=256)
        self.directory = region("dir", 0, self.index.directory_bytes)
        self.locations = region("loc", 1 << 22, self.index.locations_bytes)
        self.accessor = HashIndexAccessor(self.index, self.directory,
                                          self.locations)

    def test_header_and_location_addresses(self):
        assert self.accessor.header_addr(0) == 0
        assert self.accessor.header_addr(5) == 40
        assert self.accessor.location_addr(16) == (1 << 22) + 16

    def test_steps_touch_directory_then_locations(self):
        read = self.genome[100:200]
        steps = list(hash_seeding_steps(self.accessor, read))
        mem_steps = [s for s in steps if isinstance(s, MemStep)]
        header_steps = [
            s for s in mem_steps
            if s.accesses[0].data_class is DataClass.HASH_DIRECTORY
        ]
        location_steps = [
            s for s in mem_steps
            if s.accesses[0].data_class is DataClass.HASH_LOCATIONS
        ]
        assert header_steps and location_steps
        for step in header_steps:
            assert step.accesses[0].size == 8
        for step in location_steps:
            for access in step.accesses:
                assert self.locations.base <= access.addr < \
                    self.locations.base + self.index.locations_bytes


class TestBloomAccessorAndSteps:
    def setup_method(self):
        self.bloom = CountingBloomFilter(1 << 12, num_hashes=4, counter_bits=4)
        self.region = region("bloom", 1 << 24, self.bloom.size_bytes)
        self.accessor = BloomAccessor(self.bloom, self.region)

    def test_slot_addressing_packs_counters(self):
        # Two 4-bit counters per byte.
        assert self.accessor.slot_addr(0) == 1 << 24
        assert self.accessor.slot_addr(1) == 1 << 24
        assert self.accessor.slot_addr(2) == (1 << 24) + 1

    def test_insert_steps_are_atomic_and_update_filter(self):
        read = random_genome(60, seed=3)
        steps = list(kmer_insert_steps(self.accessor, read, 15))
        rmw = [a for s in steps if isinstance(s, MemStep) for a in s.accesses]
        assert all(a.kind is AccessKind.ATOMIC_RMW for a in rmw)
        assert len(rmw) == (60 - 15 + 1) * 4
        assert self.bloom.insertions == 60 - 15 + 1

    def test_query_steps_are_plain_reads(self):
        read = random_genome(40, seed=4)
        steps = list(kmer_query_steps(self.accessor, read, 15))
        reads = [a for s in steps if isinstance(s, MemStep) for a in s.accesses]
        assert all(a.kind is AccessKind.READ for a in reads)
        assert self.bloom.insertions == 0  # queries never mutate


class TestReferenceAccessor:
    def test_window_specs_chunking(self):
        accessor = ReferenceAccessor(region("ref", 4096, 1 << 16))
        specs = accessor.window_specs(start=0, length=512)  # 128 bytes
        assert len(specs) == 2
        assert specs[0].size == 64 and specs[1].size == 64
        assert specs[0].addr == 4096
        assert specs[1].addr == 4096 + 64

    def test_partial_tail_chunk(self):
        accessor = ReferenceAccessor(region("ref", 0, 1 << 16))
        specs = accessor.window_specs(start=10, length=100)
        total = sum(s.size for s in specs)
        assert total == (10 + 100 - 1) // 4 - 10 // 4 + 1
        assert all(s.data_class is DataClass.REFERENCE_WINDOW for s in specs)
