"""Unit tests for the component tree."""

from repro.sim import Engine
from repro.sim.component import Component


def test_root_component_owns_its_scope():
    engine = Engine()
    root = Component(engine, "system")
    assert root.stats.path == "system"
    assert root.parent is None


def test_child_scopes_nest_under_parents():
    engine = Engine()
    root = Component(engine, "system")
    mid = Component(engine, "pool", root)
    leaf = Component(engine, "dimm0", mid)
    assert leaf.path == "system.pool.dimm0"
    assert leaf.stats.parent is mid.stats


def test_stats_aggregate_through_component_tree():
    engine = Engine()
    root = Component(engine, "system")
    a = Component(engine, "a", root)
    b = Component(engine, "b", root)
    a.stats.add("energy", 3)
    b.stats.add("energy", 4)
    assert root.stats.total("energy") == 7


def test_now_and_schedule_delegate_to_engine():
    engine = Engine()
    comp = Component(engine, "c")
    hits = []
    comp.schedule(9, lambda: hits.append(comp.now))
    engine.run()
    assert hits == [9]


def test_siblings_with_same_name_share_scope():
    """Two components registering the same child name share the stat scope
    (the scope tree is keyed by name, mirroring the hardware hierarchy)."""
    engine = Engine()
    root = Component(engine, "system")
    first = Component(engine, "dup", root)
    second = Component(engine, "dup", root)
    first.stats.add("x", 1)
    second.stats.add("x", 2)
    assert root.stats.total("x") == 3
    assert first.stats is second.stats
