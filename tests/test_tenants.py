"""Tests for the open-loop multi-tenant serving family (repro.experiments.tenants)."""

import numpy as np
import pytest

from repro.experiments import ExperimentScale
from repro.experiments.tenants import (
    ARRIVAL_PROCESSES,
    QUERY_KINDS,
    SATURATION_BACKLOG_FRACTION,
    TENANT_TEMPLATES,
    ArrivalConfig,
    TenantSpec,
    _downsample_depth,
    _tenant_rng,
    build_query_schedule,
    default_tenants,
    percentile_cycles,
    run_serving_point,
)
from repro.perf.harness import fingerprint


def _rng():
    return np.random.default_rng(7)


class TestArrivals:
    @pytest.mark.parametrize("process", ["poisson", "uniform"])
    def test_stochastic_arrivals_are_strictly_increasing(self, process):
        cfg = ArrivalConfig(process=process, rate_per_kcycle=5.0)
        cycles = cfg.arrival_cycles(200, _rng())
        assert len(cycles) == 200
        assert all(b > a for a, b in zip(cycles, cycles[1:]))
        assert cycles[0] >= 1

    def test_same_rng_seed_gives_identical_arrivals(self):
        cfg = ArrivalConfig(process="poisson", rate_per_kcycle=2.0)
        assert cfg.arrival_cycles(64, _rng()) == cfg.arrival_cycles(64, _rng())

    def test_arrival_scale_compresses_the_schedule(self):
        cfg = ArrivalConfig(process="poisson", rate_per_kcycle=1.0)
        base = cfg.arrival_cycles(100, _rng())
        fast = cfg.arrival_cycles(100, _rng(), arrival_scale=10.0)
        assert fast[-1] < base[-1]

    def test_trace_replays_and_wraps_with_span(self):
        cfg = ArrivalConfig(process="trace", trace=(100, 250, 400))
        cycles = cfg.arrival_cycles(6, _rng())
        # Second lap shifts by the trace span (400).
        assert cycles == [100, 250, 400, 500, 650, 800]

    def test_trace_ignores_the_rng_entirely(self):
        cfg = ArrivalConfig(process="trace", trace=(10, 20))
        assert cfg.arrival_cycles(4, _rng()) == cfg.arrival_cycles(
            4, np.random.default_rng(999)
        )

    def test_unknown_process_raises(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            ArrivalConfig(process="bursty").arrival_cycles(4, _rng())

    def test_process_catalogue_is_stable(self):
        assert ARRIVAL_PROCESSES == ("poisson", "uniform", "trace")
        assert QUERY_KINDS == ("fm-seeding", "hash-seeding",
                              "kmer-counting", "prealignment")


class TestSchedule:
    TENANTS = (
        TenantSpec(name="a", arrival=ArrivalConfig(rate_per_kcycle=2.0),
                   mix=(("fm-seeding", 3.0), ("kmer-counting", 1.0)),
                   queries=40),
        TenantSpec(name="b",
                   arrival=ArrivalConfig(process="uniform",
                                         rate_per_kcycle=1.0),
                   mix=(("prealignment", 1.0),), queries=20),
    )

    def test_schedule_is_deterministic(self):
        assert build_query_schedule(self.TENANTS, seed=3) == \
            build_query_schedule(self.TENANTS, seed=3)

    def test_different_seeds_give_different_schedules(self):
        assert build_query_schedule(self.TENANTS, seed=3) != \
            build_query_schedule(self.TENANTS, seed=4)

    def test_schedule_is_merged_in_arrival_order(self):
        queries = build_query_schedule(self.TENANTS, seed=3)
        assert len(queries) == 60
        keys = [(q.arrival, q.tenant, q.index) for q in queries]
        assert keys == sorted(keys)

    def test_mix_respects_declared_kinds(self):
        queries = build_query_schedule(self.TENANTS, seed=3)
        kinds_a = {q.kind for q in queries if q.tenant == 0}
        kinds_b = {q.kind for q in queries if q.tenant == 1}
        assert kinds_a <= {"fm-seeding", "kmer-counting"}
        assert kinds_b == {"prealignment"}

    def test_tenant_streams_are_independent(self):
        # Dropping tenant b must not change tenant a's draws.
        both = [q for q in build_query_schedule(self.TENANTS, seed=3)
                if q.tenant == 0]
        alone = build_query_schedule(self.TENANTS[:1], seed=3)
        assert both == alone

    def test_tenant_rng_streams_differ_by_index(self):
        a = _tenant_rng(5, 0).integers(0, 1 << 30, size=4)
        b = _tenant_rng(5, 1).integers(0, 1 << 30, size=4)
        assert list(a) != list(b)


class TestPercentiles:
    def test_nearest_rank_on_small_lists(self):
        lat = [10, 20, 30, 40]
        assert percentile_cycles(lat, 50) == 20
        assert percentile_cycles(lat, 95) == 40
        assert percentile_cycles(lat, 99) == 40
        assert percentile_cycles([7], 50) == 7

    def test_empty_latencies_raise(self):
        with pytest.raises(ValueError, match="no latencies"):
            percentile_cycles([], 50)


class TestQueueTimeline:
    def test_downsample_tracks_peak_depth(self):
        events = [(10, 1), (20, 1), (30, -1), (40, 1), (50, -1), (60, -1)]
        timeline, peak = _downsample_depth(list(events), buckets=2)
        assert peak == 2
        assert timeline[-1][0] >= 60
        assert max(d for _c, d in timeline) == 2

    def test_empty_events(self):
        assert _downsample_depth([]) == ([], 0)

    def test_same_cycle_events_order_arrivals_after_departures(self):
        # Sorted by (cycle, delta): the -1 at cycle 10 lands before the
        # +1, so depth never exceeds 1.
        events = [(5, 1), (10, 1), (10, -1), (15, -1)]
        _timeline, peak = _downsample_depth(list(events), buckets=1)
        assert peak == 1


class TestBuiltInTenants:
    def test_default_tenants_cycle_templates_with_suffixes(self):
        count = len(TENANT_TEMPLATES) + 2
        tenants = default_tenants(count, queries_per_tenant=5)
        assert len(tenants) == count
        assert tenants[0].name == TENANT_TEMPLATES[0].name
        assert tenants[len(TENANT_TEMPLATES)].name == \
            f"{TENANT_TEMPLATES[0].name}-2"
        assert len({t.name for t in tenants}) == count
        assert all(t.queries == 5 for t in tenants)


class TestServingPoint:
    TENANTS = (
        TenantSpec(name="aligner",
                   arrival=ArrivalConfig(rate_per_kcycle=0.2),
                   mix=(("fm-seeding", 3.0), ("hash-seeding", 1.0)),
                   queries=10),
        TenantSpec(name="counter",
                   arrival=ArrivalConfig(process="uniform",
                                         rate_per_kcycle=0.15),
                   mix=(("kmer-counting", 1.0),), queries=6),
    )

    @pytest.fixture(scope="class")
    def point(self):
        return run_serving_point("beacon-d", self.TENANTS,
                                 scale=ExperimentScale.quick(), seed=11)

    def test_every_query_completes(self, point):
        assert point.queries == 16
        assert point.report is not None
        assert point.report.tasks_completed == 16
        assert point.makespan_cycles > point.last_arrival_cycle

    def test_per_tenant_stats_are_ordered_and_complete(self, point):
        assert [s.tenant for s in point.per_tenant] == ["aligner", "counter"]
        for stats in point.per_tenant:
            assert 0 < stats.p50_cycles <= stats.p95_cycles \
                <= stats.p99_cycles <= stats.max_cycles

    def test_queue_timeline_and_peak_are_consistent(self, point):
        assert point.peak_queue_depth >= 1
        assert point.queue_depth
        assert max(d for _c, d in point.queue_depth) == point.peak_queue_depth

    def test_saturation_criterion_matches_backlog(self, point):
        assert point.saturated == (
            point.backlog_at_last_arrival
            > SATURATION_BACKLOG_FRACTION * point.queries
        )

    def test_bit_identical_across_runs(self, point):
        twin = run_serving_point("beacon-d", self.TENANTS,
                                 scale=ExperimentScale.quick(), seed=11)
        assert twin == point
        assert fingerprint(twin) == fingerprint(point)

    def test_seed_changes_the_point(self, point):
        other = run_serving_point("beacon-d", self.TENANTS,
                                  scale=ExperimentScale.quick(), seed=12)
        assert other != point

    def test_needs_at_least_one_tenant(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            run_serving_point("beacon-d", ())
