"""Unit tests for the experiment result dataclasses (no simulation)."""

import pytest

from repro.core.config import Algorithm, OptimizationFlags
from repro.core.metrics import Report
from repro.experiments.fig3_idealized import Fig3Result, IdealizedGain
from repro.experiments.fig12_fm_seeding import SeedingFigureResult
from repro.experiments.runner import StepResult, SweepResult


def report(runtime, energy=100.0, label="r"):
    return Report(label=label, system="s", algorithm="a", dataset="d",
                  runtime_cycles=runtime, tck_ns=1.25,
                  energy_dram_nj=energy * 0.6, energy_comm_nj=energy * 0.35,
                  energy_compute_nj=energy * 0.05, tasks_completed=1)


def sweep(runtimes, ideal=None, baseline=None, cpu=None):
    steps = []
    prev = None
    for i, rt in enumerate(runtimes):
        step = StepResult(label=f"step{i}", flags=OptimizationFlags(),
                          report=report(rt))
        if prev is not None:
            step.step_speedup = prev / rt
        prev = rt
        steps.append(step)
    return SweepResult(
        system="beacon-d", algorithm=Algorithm.FM_SEEDING, dataset="Pt",
        steps=steps,
        ideal=report(ideal) if ideal else None,
        baseline=report(baseline) if baseline else None,
        cpu=report(cpu) if cpu else None,
    )


class TestSweepResult:
    def test_total_opt_speedup(self):
        s = sweep([1000, 500, 250])
        assert s.total_opt_speedup == 4.0
        assert s.vanilla.runtime_cycles == 1000
        assert s.full.runtime_cycles == 250

    def test_percent_of_ideal(self):
        s = sweep([1000, 500], ideal=400)
        assert s.percent_of_ideal == pytest.approx(0.8)
        with pytest.raises(ValueError):
            sweep([100]).percent_of_ideal

    def test_baseline_and_cpu_ratios(self):
        s = sweep([1000, 100], baseline=400, cpu=50_000)
        assert s.speedup_vs_baseline() == 4.0
        assert s.speedup_vs_cpu() == 500.0
        with pytest.raises(ValueError):
            sweep([10]).speedup_vs_baseline()

    def test_step_speedups_chain(self):
        s = sweep([800, 400, 400, 100])
        speedups = [st.step_speedup for st in s.steps]
        assert speedups == [1.0, 2.0, 1.0, 4.0]


class TestSeedingFigureResult:
    def _result(self):
        return SeedingFigureResult(sweeps={
            "beacon-d": [sweep([1000, 200], ideal=180, baseline=500,
                               cpu=40_000),
                         sweep([2000, 500], ideal=450, baseline=1500,
                               cpu=90_000)],
            "beacon-s": [sweep([1000, 400], ideal=350, baseline=500,
                               cpu=40_000)],
        })

    def test_mean_step_speedup_uses_geomean(self):
        result = self._result()
        # step1 speedups: 5.0 and 4.0 -> geomean sqrt(20)
        assert result.mean_step_speedup("beacon-d", "step1") == pytest.approx(
            20 ** 0.5)

    def test_mean_ratios(self):
        result = self._result()
        assert result.mean_speedup_vs_baseline("beacon-d") == pytest.approx(
            (2.5 * 3.0) ** 0.5)
        assert result.mean_percent_of_ideal("beacon-s") == pytest.approx(0.875)
        assert result.mean_speedup_vs_cpu("beacon-s") == pytest.approx(100.0)

    def test_step_labels(self):
        assert self._result().step_labels("beacon-d") == ["step0", "step1"]


class TestFig3Result:
    def test_means(self):
        gains = [
            IdealizedGain("medal", "fm_seeding", "Pt",
                          real=report(400, energy=40),
                          ideal=report(100, energy=10)),
            IdealizedGain("nest", "kmer_counting", "Hs",
                          real=report(900, energy=90),
                          ideal=report(100, energy=10)),
        ]
        result = Fig3Result(gains)
        assert gains[0].speedup == 4.0
        assert gains[1].energy_gain == 9.0
        assert result.mean_speedup == pytest.approx(6.0)
        assert result.mean_energy_gain == pytest.approx(6.0)


class TestScalabilityResult:
    def _points(self, runtimes):
        from repro.experiments.scalability import ScalingPoint

        return [
            ScalingPoint(switches=2 ** i, dimms=4 * 2 ** i, pes=32 * 2 ** i,
                         reads=100, report=report(rt))
            for i, rt in enumerate(runtimes)
        ]

    def test_strong_speedup_and_weak_efficiency(self):
        from repro.experiments.scalability import ScalabilityResult

        result = ScalabilityResult(
            strong={"beacon-d": self._points([1000, 600, 400])},
            weak={"beacon-d": self._points([1000, 1050, 1100])},
        )
        assert result.strong_speedup("beacon-d") == pytest.approx(2.5)
        assert result.weak_efficiency("beacon-d") == pytest.approx(1000 / 1100)


class TestPrintHelpers:
    def test_print_sweep_renders(self, capsys):
        from repro.experiments.runner import print_sweep

        s = sweep([1000, 500], ideal=450, baseline=800, cpu=50_000)
        print_sweep(s)
        out = capsys.readouterr().out
        assert "step0" in out and "of ideal" in out and "vs cpu48" in out
