"""Tests for the parallel sweep fan-out (repro.experiments.parallel).

The load-bearing property is *determinism*: a batch of sweep jobs must
produce bit-identical results whether it runs serially, serially again, or
fanned out over a process pool.  The simulations themselves are seeded and
engine-ordered, so any divergence would come from the fan-out layer — which
is exactly what these tests pin down.
"""

import warnings
from dataclasses import replace

import pytest

from repro.core.config import Algorithm
from repro.experiments import (
    ExperimentScale,
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.parallel import SweepJobError, _execute_job
from repro.experiments.runner import run_step_sweep
from repro.obs.telemetry import read_ledger, summarize_ledger
from repro.perf import fingerprint


def _square(x):
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise ValueError(f"boom on {x}")
    return x * 10


def _raise_local_exception(x):
    class LocalError(RuntimeError):
        """Defined inside the function, so it cannot pickle by reference."""

    raise LocalError(f"unshippable failure on {x}")


def _tiny_scale() -> ExperimentScale:
    """Even smaller than quick: one dataset, minimal genome/read scales."""
    return replace(
        ExperimentScale.quick(),
        genome_scale=0.03, read_scale=0.5, num_datasets=1,
    )


def _seeding_jobs(scale) -> list:
    """One picklable FM-seeding sweep job per seeding dataset."""
    return [
        SweepJob(
            key=spec.name,
            func=run_step_sweep,
            args=("beacon-d", Algorithm.FM_SEEDING,
                  scale.seeding_workload(spec), scale),
            kwargs={"with_ideal": False},
        )
        for spec in scale.seeding_datasets()
    ]


# -- mechanics ---------------------------------------------------------------------


def test_serial_run_preserves_submission_order():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in (3, 1, 2)]
    results = runner.run(jobs)
    assert list(results) == ["3", "1", "2"]
    assert results == {"3": 9, "1": 1, "2": 4}
    assert runner.last_run_parallel is False


def test_run_values_matches_run_order():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in range(5)]
    assert runner.run_values(jobs) == [0, 1, 4, 9, 16]


def test_duplicate_keys_rejected():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key="same", func=_square, args=(i,)) for i in range(2)]
    with pytest.raises(ValueError, match="duplicate"):
        runner.run(jobs)


def test_kwargs_reach_the_worker():
    def check(a, *, b):
        return (a, b)

    # Serial path (closures are fine there).
    job = SweepJob(key="k", func=check, args=(1,), kwargs={"b": 2})
    assert _execute_job(job) == (1, 2)


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        ParallelSweepRunner(jobs=0)


def test_jobs_resolved_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert ParallelSweepRunner.from_env().jobs == 3
    assert ParallelSweepRunner().jobs == 3
    # An explicit argument wins over the environment.
    assert ParallelSweepRunner(jobs=2).jobs == 2


def test_garbage_env_value_falls_back_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.warns(UserWarning, match="REPRO_JOBS"):
        runner = ParallelSweepRunner.from_env()
    assert runner.jobs == 1


def test_resolve_runner_prefers_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    explicit = ParallelSweepRunner(jobs=2)
    assert resolve_runner(explicit) is explicit
    assert resolve_runner(None).jobs == 4


def test_unpicklable_job_falls_back_to_serial():
    """A closure cannot ship to a worker process; the batch must still
    complete (serially) instead of failing the whole evaluation."""
    captured = []

    def closure(x):  # not picklable by reference
        captured.append(x)
        return -x

    runner = ParallelSweepRunner(jobs=2)
    jobs = [SweepJob(key=str(i), func=closure, args=(i,)) for i in range(3)]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        results = runner.run(jobs)
    assert results == {"0": 0, "1": -1, "2": -2}
    assert runner.last_run_parallel is False


def test_worker_exceptions_propagate():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key="bad", func=_square, args=("not-a-number",))]
    with pytest.raises(TypeError):
        runner.run(jobs)


def test_parallel_simple_results_match_serial():
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in range(6)]
    serial = ParallelSweepRunner(jobs=1).run(jobs)
    parallel_runner = ParallelSweepRunner(jobs=2)
    parallel = parallel_runner.run(jobs)
    assert parallel == serial
    assert list(parallel) == list(serial)


# -- failure paths -----------------------------------------------------------------


def _mixed_jobs():
    return [SweepJob(key=str(i), func=_fail_on_two, args=(i,))
            for i in range(5)]


def test_failed_job_does_not_abort_batch():
    """One raising job must not silence the rest: run_with_outcomes
    returns every outcome, failed one included, in submission order."""
    runner = ParallelSweepRunner(jobs=1)
    outcomes = runner.run_with_outcomes(_mixed_jobs())
    assert list(outcomes) == ["0", "1", "2", "3", "4"]
    failed = outcomes["2"]
    assert failed.failed
    assert failed.error_type == "ValueError"
    assert "boom on 2" in failed.error
    assert failed.traceback_sha256 and len(failed.traceback_sha256) == 64
    assert failed.result is None
    for key in ("0", "1", "3", "4"):
        assert not outcomes[key].failed
        assert outcomes[key].result == int(key) * 10
    assert runner.last_failures.keys() == {"2"}


def test_run_reraises_first_failure_after_drain():
    """run() still raises — but only after every job has executed."""
    runner = ParallelSweepRunner(jobs=1)
    with pytest.raises(ValueError, match="boom on 2"):
        runner.run(_mixed_jobs())
    # The jobs *after* the failure still ran (their failures dict is
    # complete and the successes were recorded before the re-raise).
    assert runner.last_failures.keys() == {"2"}


def test_unpicklable_exception_raises_sweep_job_error():
    """A failure whose exception cannot ship back re-raises as
    SweepJobError carrying the key and the worker-formatted traceback."""
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key="local", func=_raise_local_exception, args=(1,))]
    with pytest.raises(SweepJobError, match="local") as excinfo:
        runner.run(jobs)
    assert excinfo.value.key == "local"
    assert "unshippable failure on 1" in excinfo.value.formatted_traceback


def test_failed_event_lands_in_ledger(tmp_path):
    """A mid-sweep failure is a ledger event with a traceback digest, and
    the remaining jobs' finished events are still recorded."""
    ledger = str(tmp_path / "runs.jsonl")
    runner = ParallelSweepRunner(jobs=1, ledger_path=ledger)
    outcomes = runner.run_with_outcomes(_mixed_jobs(), label="failure-test")
    events = read_ledger(ledger)
    by_name = {}
    for event in events:
        by_name.setdefault(event["event"], []).append(event)
    assert len(by_name["queued"]) == 5
    assert len(by_name["started"]) == 5
    assert len(by_name["finished"]) == 4
    (failed_event,) = by_name["failed"]
    assert failed_event["job"] == "2"
    assert failed_event["error"].startswith("ValueError: boom on 2")
    assert failed_event["traceback_sha256"] == \
        outcomes["2"].traceback_sha256
    (end,) = by_name["campaign-end"]
    assert end["finished"] == 4 and end["failed"] == 1
    summary = summarize_ledger(events)
    assert summary.total_jobs == 5
    assert summary.finished == 4
    assert summary.failed == 1
    assert summary.failures[0][0] == "2"


def test_outcomes_carry_wall_time_and_worker_on_both_paths():
    """S2: per-job wall time + worker id, schema-identical serial vs pool."""
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in range(4)]
    serial = ParallelSweepRunner(jobs=1).run_with_outcomes(jobs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        pooled = ParallelSweepRunner(jobs=2).run_with_outcomes(jobs)
    for outcomes in (serial, pooled):
        assert list(outcomes) == ["0", "1", "2", "3"]
        for outcome in outcomes.values():
            assert outcome.wall_s >= 0.0
            assert outcome.worker and "-pid" in outcome.worker
            assert not outcome.failed


def test_ledger_schema_identical_serial_and_pooled(tmp_path):
    """The per-job event sequences and field sets must not depend on
    whether the batch ran serially or through the pool."""
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in range(3)]

    def lifecycle(path, runner_jobs):
        runner = ParallelSweepRunner(jobs=runner_jobs, ledger_path=path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            runner.run(jobs)
        shapes = {}
        for event in read_ledger(path):
            if event.get("job") is None:
                continue
            shapes.setdefault(event["job"], []).append(
                (event["event"], tuple(sorted(event)))
            )
        return shapes

    serial = lifecycle(str(tmp_path / "serial.jsonl"), 1)
    pooled = lifecycle(str(tmp_path / "pooled.jsonl"), 2)
    assert serial == pooled
    for per_job in serial.values():
        assert [name for name, _fields in per_job] == \
            ["queued", "started", "finished"]


# -- determinism of real sweeps ----------------------------------------------------


def test_sweep_determinism_serial_twice_and_parallel():
    """One quick-scale sweep, twice serially and once through the pool:
    the Report cycle counts and energy totals must be identical."""
    scale = _tiny_scale()
    serial = ParallelSweepRunner(jobs=1)
    first = serial.run(_seeding_jobs(scale))
    second = serial.run(_seeding_jobs(scale))
    pool_runner = ParallelSweepRunner(jobs=2)
    with warnings.catch_warnings():
        # If the sandbox cannot fork a pool the runner degrades to serial,
        # which still exercises the determinism contract.
        warnings.simplefilter("ignore")
        pooled = pool_runner.run(_seeding_jobs(scale))

    assert list(first) == list(second) == list(pooled)
    assert fingerprint(first) == fingerprint(second)
    assert fingerprint(first) == fingerprint(pooled)
    # The fingerprints cover real content (one entry per step report).
    assert fingerprint(first)
    for sweep in first.values():
        assert all(s.report.runtime_cycles > 0 for s in sweep.steps)
