"""Tests for the parallel sweep fan-out (repro.experiments.parallel).

The load-bearing property is *determinism*: a batch of sweep jobs must
produce bit-identical results whether it runs serially, serially again, or
fanned out over a process pool.  The simulations themselves are seeded and
engine-ordered, so any divergence would come from the fan-out layer — which
is exactly what these tests pin down.
"""

import warnings
from dataclasses import replace

import pytest

from repro.core.config import Algorithm
from repro.experiments import (
    ExperimentScale,
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.parallel import _execute_job
from repro.experiments.runner import run_step_sweep
from repro.perf import fingerprint


def _square(x):
    return x * x


def _tiny_scale() -> ExperimentScale:
    """Even smaller than quick: one dataset, minimal genome/read scales."""
    return replace(
        ExperimentScale.quick(),
        genome_scale=0.03, read_scale=0.5, num_datasets=1,
    )


def _seeding_jobs(scale) -> list:
    """One picklable FM-seeding sweep job per seeding dataset."""
    return [
        SweepJob(
            key=spec.name,
            func=run_step_sweep,
            args=("beacon-d", Algorithm.FM_SEEDING,
                  scale.seeding_workload(spec), scale),
            kwargs={"with_ideal": False},
        )
        for spec in scale.seeding_datasets()
    ]


# -- mechanics ---------------------------------------------------------------------


def test_serial_run_preserves_submission_order():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in (3, 1, 2)]
    results = runner.run(jobs)
    assert list(results) == ["3", "1", "2"]
    assert results == {"3": 9, "1": 1, "2": 4}
    assert runner.last_run_parallel is False


def test_run_values_matches_run_order():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in range(5)]
    assert runner.run_values(jobs) == [0, 1, 4, 9, 16]


def test_duplicate_keys_rejected():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key="same", func=_square, args=(i,)) for i in range(2)]
    with pytest.raises(ValueError, match="duplicate"):
        runner.run(jobs)


def test_kwargs_reach_the_worker():
    def check(a, *, b):
        return (a, b)

    # Serial path (closures are fine there).
    job = SweepJob(key="k", func=check, args=(1,), kwargs={"b": 2})
    assert _execute_job(job) == (1, 2)


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        ParallelSweepRunner(jobs=0)


def test_jobs_resolved_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert ParallelSweepRunner.from_env().jobs == 3
    assert ParallelSweepRunner().jobs == 3
    # An explicit argument wins over the environment.
    assert ParallelSweepRunner(jobs=2).jobs == 2


def test_garbage_env_value_falls_back_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.warns(UserWarning, match="REPRO_JOBS"):
        runner = ParallelSweepRunner.from_env()
    assert runner.jobs == 1


def test_resolve_runner_prefers_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    explicit = ParallelSweepRunner(jobs=2)
    assert resolve_runner(explicit) is explicit
    assert resolve_runner(None).jobs == 4


def test_unpicklable_job_falls_back_to_serial():
    """A closure cannot ship to a worker process; the batch must still
    complete (serially) instead of failing the whole evaluation."""
    captured = []

    def closure(x):  # not picklable by reference
        captured.append(x)
        return -x

    runner = ParallelSweepRunner(jobs=2)
    jobs = [SweepJob(key=str(i), func=closure, args=(i,)) for i in range(3)]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        results = runner.run(jobs)
    assert results == {"0": 0, "1": -1, "2": -2}
    assert runner.last_run_parallel is False


def test_worker_exceptions_propagate():
    runner = ParallelSweepRunner(jobs=1)
    jobs = [SweepJob(key="bad", func=_square, args=("not-a-number",))]
    with pytest.raises(TypeError):
        runner.run(jobs)


def test_parallel_simple_results_match_serial():
    jobs = [SweepJob(key=str(i), func=_square, args=(i,)) for i in range(6)]
    serial = ParallelSweepRunner(jobs=1).run(jobs)
    parallel_runner = ParallelSweepRunner(jobs=2)
    parallel = parallel_runner.run(jobs)
    assert parallel == serial
    assert list(parallel) == list(serial)


# -- determinism of real sweeps ----------------------------------------------------


def test_sweep_determinism_serial_twice_and_parallel():
    """One quick-scale sweep, twice serially and once through the pool:
    the Report cycle counts and energy totals must be identical."""
    scale = _tiny_scale()
    serial = ParallelSweepRunner(jobs=1)
    first = serial.run(_seeding_jobs(scale))
    second = serial.run(_seeding_jobs(scale))
    pool_runner = ParallelSweepRunner(jobs=2)
    with warnings.catch_warnings():
        # If the sandbox cannot fork a pool the runner degrades to serial,
        # which still exercises the determinism contract.
        warnings.simplefilter("ignore")
        pooled = pool_runner.run(_seeding_jobs(scale))

    assert list(first) == list(second) == list(pooled)
    assert fingerprint(first) == fingerprint(second)
    assert fingerprint(first) == fingerprint(pooled)
    # The fingerprints cover real content (one entry per step report).
    assert fingerprint(first)
    for sweep in first.values():
        assert all(s.report.runtime_cycles > 0 for s in sweep.steps)
