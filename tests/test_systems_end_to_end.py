"""End-to-end system tests: every (system, algorithm) pair at tiny scale,
functional correctness of the outputs, determinism."""

import pytest

from repro.baselines import CpuModel, Medal, Nest
from repro.core import Algorithm, BeaconConfig, BeaconD, BeaconS, OptimizationFlags
from repro.genomics.fm_index import FMIndex
from repro.genomics.kmer_counting import exact_counts
from repro.genomics.workloads import (
    SEEDING_DATASETS,
    make_kmer_workload,
    make_seeding_workload,
)

CFG = BeaconConfig().scaled(16)
FULL_D = OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING)


@pytest.fixture(scope="module")
def seeding_workload():
    return make_seeding_workload(SEEDING_DATASETS[0], scale=0.06,
                                 read_scale=2.0)


@pytest.fixture(scope="module")
def kmer_workload():
    return make_kmer_workload(scale=0.08, read_scale=0.3)


SYSTEM_FACTORIES = {
    "beacon-d": lambda flags: BeaconD(config=CFG, flags=flags),
    "beacon-s": lambda flags: BeaconS(config=CFG, flags=flags),
    "medal": lambda flags: Medal(config=CFG),
    "nest": lambda flags: Nest(config=CFG),
}


@pytest.mark.parametrize("system", ["beacon-d", "beacon-s", "medal"])
def test_fm_seeding_completes(system, seeding_workload):
    flags = OptimizationFlags.all_for(
        "beacon-d" if system == "medal" else system, Algorithm.FM_SEEDING)
    sys_ = SYSTEM_FACTORIES[system](flags)
    report = sys_.run_fm_seeding(seeding_workload)
    assert report.tasks_completed == len(seeding_workload.reads)
    assert report.runtime_cycles > 0
    assert report.total_energy_nj > 0
    assert report.mem_requests > 0


@pytest.mark.parametrize("system", ["beacon-d", "beacon-s", "medal"])
def test_hash_seeding_completes(system, seeding_workload):
    flags = OptimizationFlags.all_for(
        "beacon-d" if system == "medal" else system, Algorithm.HASH_SEEDING)
    sys_ = SYSTEM_FACTORIES[system](flags)
    report = sys_.run_hash_seeding(seeding_workload)
    assert report.tasks_completed == len(seeding_workload.reads)


@pytest.mark.parametrize("system,flags", [
    ("beacon-d", OptimizationFlags.all_for("beacon-d", Algorithm.KMER_COUNTING)),
    ("beacon-s", OptimizationFlags.all_for("beacon-s", Algorithm.KMER_COUNTING)),
    ("beacon-s", OptimizationFlags(data_packing=True, memory_access_opt=True,
                                   data_placement=True)),  # multi-pass S
    ("nest", OptimizationFlags.vanilla()),
])
def test_kmer_counting_is_functionally_correct(system, flags, kmer_workload):
    sys_ = SYSTEM_FACTORIES[system](flags)
    report = sys_.run_kmer_counting(kmer_workload, k=13, num_counters=1 << 14)
    assert report.runtime_cycles > 0
    truth = exact_counts(kmer_workload.reads, 13)
    # The simulated run's filter state must never undercount (counting
    # Bloom filter invariant, preserved through the whole simulation).
    final = sys_.kmer_global_filter
    for kmer, count in list(truth.items())[:200]:
        assert final.count(kmer) >= min(count, final.saturation)


def test_kmer_multi_pass_equals_single_pass_filter(kmer_workload):
    multi = BeaconS(config=CFG, flags=OptimizationFlags(
        data_packing=True, memory_access_opt=True, data_placement=True))
    multi.run_kmer_counting(kmer_workload, k=13, num_counters=1 << 14)
    single = BeaconS(config=CFG, flags=OptimizationFlags.all_for(
        "beacon-s", Algorithm.KMER_COUNTING))
    single.run_kmer_counting(kmer_workload, k=13, num_counters=1 << 14)
    assert (multi.kmer_global_filter.counters ==
            single.kmer_global_filter.counters).all()


@pytest.mark.parametrize("system", ["beacon-d", "beacon-s"])
def test_prealignment_true_sites_accepted(system, seeding_workload):
    flags = OptimizationFlags.all_for(system, Algorithm.PREALIGNMENT)
    sys_ = SYSTEM_FACTORIES[system](flags)
    report = sys_.run_prealignment(seeding_workload, max_edits=3,
                                   candidates_per_read=3)
    results = sys_.prealign_results
    assert len(results) == 3 * len(seeding_workload.reads)
    # Pairs come in (true, decoy, decoy) order per read after sharding is
    # undone; check acceptance statistics instead of order.
    accepted = sum(1 for r in results if r.accepted)
    # True sites within the edit budget pass (reads carry ~1% errors, so a
    # few can genuinely exceed the threshold); decoys are mostly rejected.
    assert accepted >= 0.9 * len(seeding_workload.reads)
    assert accepted < len(results)


def test_fm_seeding_is_deterministic(seeding_workload):
    def run():
        sys_ = BeaconD(config=CFG, flags=FULL_D)
        return sys_.run_fm_seeding(seeding_workload)

    a, b = run(), run()
    assert a.runtime_cycles == b.runtime_cycles
    assert a.total_energy_nj == pytest.approx(b.total_energy_nj)


def test_fm_addresses_match_functional_index(seeding_workload):
    """The simulated request count equals the functional trace's access
    count — execution-driven simulation, not a synthetic approximation."""
    fm = FMIndex(seeding_workload.reference)
    expected = sum(
        len(step.blocks)
        for read in seeding_workload.reads
        for step in fm.search_trace(read)
    )
    sys_ = BeaconD(config=CFG, flags=OptimizationFlags.vanilla())
    report = sys_.run_fm_seeding(seeding_workload)
    assert report.mem_requests == expected


def test_idealized_never_slower(seeding_workload):
    real = BeaconD(config=CFG, flags=FULL_D).run_fm_seeding(seeding_workload)
    ideal = BeaconD(config=CFG.idealized(), flags=FULL_D).run_fm_seeding(
        seeding_workload)
    assert ideal.runtime_cycles <= real.runtime_cycles


def test_cpu_model_reports(seeding_workload, kmer_workload):
    cpu = CpuModel()
    for algorithm, workload in [
        (Algorithm.FM_SEEDING, seeding_workload),
        (Algorithm.HASH_SEEDING, seeding_workload),
        (Algorithm.KMER_COUNTING, kmer_workload),
        (Algorithm.PREALIGNMENT, seeding_workload),
    ]:
        report = cpu.run_algorithm(algorithm, workload)
        assert report.runtime_cycles > 0
        assert report.total_energy_nj > 0
        assert report.system == "cpu48"


def test_beacon_beats_cpu(seeding_workload):
    cpu = CpuModel().run_fm_seeding(seeding_workload)
    beacon = BeaconD(config=CFG, flags=FULL_D).run_fm_seeding(seeding_workload)
    assert beacon.speedup_vs(cpu) > 1.0


def test_report_extra_diagnostics(seeding_workload):
    report = BeaconD(config=CFG, flags=FULL_D).run_fm_seeding(seeding_workload)
    assert 0.0 <= report.extra["pe_utilization"] <= 1.0
    assert report.extra["dram_activations"] > 0
    assert report.bandwidth_efficiency > 0
