"""Tests for the scenario DSL (repro.experiments.dsl)."""

import json

import pytest

from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments.dsl import (
    DRIVER_PARAMS,
    PAYLOAD_KINDS,
    SCHEMA_FIELDS,
    SWEEP_AXES,
    PayloadError,
    compile_payload,
    load_scenario_file,
    parse_payload_text,
    register_payload,
    run_sweep_point,
    schema_reference,
    validate_payload,
)
from repro.experiments.tenants import MultiTenantResult
from repro.perf.harness import fingerprint


def sweep_payload(**overrides):
    """A minimal valid ``kind: sweep`` payload (dict, copy per test)."""
    payload = {
        "scenario": "dsl-sweep-test",
        "kind": "sweep",
        "backends": ["beacon-d"],
        "workload": {"driver": "hash-seeding", "datasets": ["Pt"],
                     "params": {"k": 13}},
        "sweep": [{"axis": "num_switches", "values": [1, 2]}],
    }
    payload.update(overrides)
    return payload


def tenant_payload(**overrides):
    """A minimal valid ``kind: multi-tenant`` payload."""
    payload = {
        "scenario": "dsl-mt-test",
        "kind": "multi-tenant",
        "backends": ["beacon-d"],
        "seed": 11,
        "tenants": [
            {"name": "aligner",
             "arrival": {"process": "poisson", "rate": 0.2},
             "mix": {"fm-seeding": 3, "hash-seeding": 1}, "queries": 8},
            {"name": "counter",
             "arrival": {"process": "uniform", "rate": 0.15},
             "mix": {"kmer-counting": 1}, "queries": 5},
        ],
        "sweep": {"tenant_counts": [2], "arrival_scales": [1.0]},
    }
    payload.update(overrides)
    return payload


class TestValidationAccepts:
    def test_minimal_sweep_payload_normalizes(self):
        payload = validate_payload(sweep_payload())
        assert payload.name == "dsl-sweep-test"
        assert payload.kind == "sweep"
        assert payload.backends == ("beacon-d",)
        assert payload.workload.driver == "hash-seeding"
        assert payload.workload.params == (("k", 13),)
        assert payload.sweep_axes[0].axis == "num_switches"
        assert payload.sweep_axes[0].values == (1, 2)

    def test_defaults_fill_in(self):
        payload = validate_payload({
            "scenario": "tiny", "backends": ["beacon-s"],
            "workload": {"driver": "fm-seeding"},
        })
        assert payload.kind == "sweep"
        assert payload.title == "tiny"
        assert payload.seed == 0
        assert payload.optimizations == "full"
        assert payload.workload.datasets == ("Pt",)
        assert payload.sweep_axes == ()

    def test_backend_aliases_normalize_to_canonical_names(self):
        payload = validate_payload({
            "scenario": "alias", "backends": ["ddr"],
            "workload": {"driver": "fm-seeding"},
        })
        assert payload.backends == ("ddr-ndp",)

    def test_multi_tenant_payload_normalizes(self):
        payload = validate_payload(tenant_payload())
        assert payload.kind == "multi-tenant"
        assert [t.name for t in payload.tenants] == ["aligner", "counter"]
        assert payload.tenants[0].mix == (("fm-seeding", 3.0),
                                          ("hash-seeding", 1.0))
        assert payload.tenant_sweep.tenant_counts == (2,)
        assert payload.tenant_sweep.arrival_scales == (1.0,)

    def test_trace_arrival_round_trips(self):
        data = tenant_payload()
        data["tenants"][0]["arrival"] = {"process": "trace",
                                         "trace": [50, 125, 300]}
        payload = validate_payload(data)
        assert payload.tenants[0].arrival.process == "trace"
        assert payload.tenants[0].arrival.trace == (50, 125, 300)


#: One rejection case per validation rule: (payload, expected error path).
REJECTIONS = [
    ("not a mapping", ["nope"], "<payload>"),
    ("unknown top-level field", sweep_payload(bogus=1), "bogus"),
    ("missing scenario", {"backends": ["beacon-d"]}, "scenario"),
    ("bad scenario name", sweep_payload(scenario="Bad Name"), "scenario"),
    ("non-str title", sweep_payload(title=7), "title"),
    ("bad kind", sweep_payload(kind="batch"), "kind"),
    ("non-list aliases", sweep_payload(aliases="x"), "aliases"),
    ("non-str alias", sweep_payload(aliases=[1]), "aliases[0]"),
    ("negative seed", sweep_payload(seed=-1), "seed"),
    ("bool seed", sweep_payload(seed=True), "seed"),
    ("missing backends", {"scenario": "x",
                          "workload": {"driver": "fm-seeding"}}, "backends"),
    ("empty backends", sweep_payload(backends=[]), "backends"),
    ("non-str backend", sweep_payload(backends=[3]), "backends[0]"),
    ("unknown backend", sweep_payload(backends=["beacon-d", "tpu"]),
     "backends[1]"),
    ("cpu serving multi-tenant", tenant_payload(backends=["cpu"]),
     "backends[0]"),
    ("missing workload", {"scenario": "x", "backends": ["beacon-d"]},
     "workload"),
    ("unknown workload field",
     sweep_payload(workload={"driver": "fm-seeding", "reads": 9}),
     "workload.reads"),
    ("missing driver", sweep_payload(workload={}), "workload.driver"),
    ("unknown driver", sweep_payload(workload={"driver": "assembly"}),
     "workload.driver"),
    ("empty datasets",
     sweep_payload(workload={"driver": "fm-seeding", "datasets": []}),
     "workload.datasets"),
    ("unknown dataset",
     sweep_payload(workload={"driver": "fm-seeding", "datasets": ["Zz"]}),
     "workload.datasets[0]"),
    ("param unknown for driver",
     sweep_payload(workload={"driver": "fm-seeding", "params": {"k": 13}}),
     "workload.params.k"),
    ("non-positive param",
     sweep_payload(workload={"driver": "hash-seeding", "params": {"k": 0}}),
     "workload.params.k"),
    ("bad optimizations", sweep_payload(optimizations="most"),
     "optimizations"),
    ("sweep not a list", sweep_payload(sweep={"axis": "pe_divisor"}),
     "sweep"),
    ("unknown sweep field",
     sweep_payload(sweep=[{"axis": "pe_divisor", "values": [1], "step": 2}]),
     "sweep[0].step"),
    ("unknown axis", sweep_payload(sweep=[{"axis": "voltage",
                                           "values": [1]}]),
     "sweep[0].axis"),
    ("duplicate axis",
     sweep_payload(sweep=[{"axis": "pe_divisor", "values": [1]},
                          {"axis": "pe_divisor", "values": [2]}]),
     "sweep[1].axis"),
    ("empty axis values", sweep_payload(sweep=[{"axis": "pe_divisor",
                                                "values": []}]),
     "sweep[0].values"),
    ("non-int axis value", sweep_payload(sweep=[{"axis": "pe_divisor",
                                                 "values": [1.5]}]),
     "sweep[0].values[0]"),
    ("non-positive scale value",
     sweep_payload(sweep=[{"axis": "read_scale", "values": [0]}]),
     "sweep[0].values[0]"),
    ("dataset on sweep kind", sweep_payload(dataset="Pt"), "dataset"),
    ("tenants on sweep kind", sweep_payload(tenants=[]), "tenants"),
    ("workload on multi-tenant kind",
     tenant_payload(workload={"driver": "fm-seeding"}), "workload"),
    ("optimizations on multi-tenant kind",
     tenant_payload(optimizations="full"), "optimizations"),
    ("unknown serving dataset", tenant_payload(dataset="Zz"), "dataset"),
    ("missing tenants", {"scenario": "x", "kind": "multi-tenant",
                         "backends": ["beacon-d"]}, "tenants"),
    ("empty tenants", tenant_payload(tenants=[]), "tenants"),
    ("unknown tenant field",
     tenant_payload(tenants=[{"name": "a", "priority": 1}]),
     "tenants[0].priority"),
    ("missing tenant name", tenant_payload(tenants=[{"queries": 4}]),
     "tenants[0].name"),
    ("duplicate tenant name",
     tenant_payload(tenants=[{"name": "a"}, {"name": "a"}]),
     "tenants[1].name"),
    ("bad arrival process",
     tenant_payload(tenants=[{"name": "a",
                              "arrival": {"process": "bursty"}}]),
     "tenants[0].arrival.process"),
    ("non-positive rate",
     tenant_payload(tenants=[{"name": "a", "arrival": {"rate": 0}}]),
     "tenants[0].arrival.rate"),
    ("rate with trace process",
     tenant_payload(tenants=[{"name": "a",
                              "arrival": {"process": "trace", "rate": 1,
                                          "trace": [5]}}]),
     "tenants[0].arrival.rate"),
    ("trace missing cycles",
     tenant_payload(tenants=[{"name": "a",
                              "arrival": {"process": "trace"}}]),
     "tenants[0].arrival.trace"),
    ("non-increasing trace",
     tenant_payload(tenants=[{"name": "a",
                              "arrival": {"process": "trace",
                                          "trace": [10, 10]}}]),
     "tenants[0].arrival.trace"),
    ("trace cycles without trace process",
     tenant_payload(tenants=[{"name": "a", "arrival": {"trace": [5]}}]),
     "tenants[0].arrival.trace"),
    ("empty mix", tenant_payload(tenants=[{"name": "a", "mix": {}}]),
     "tenants[0].mix"),
    ("unknown query kind",
     tenant_payload(tenants=[{"name": "a", "mix": {"assembly": 1}}]),
     "tenants[0].mix.assembly"),
    ("non-positive mix weight",
     tenant_payload(tenants=[{"name": "a", "mix": {"fm-seeding": 0}}]),
     "tenants[0].mix.fm-seeding"),
    ("zero queries", tenant_payload(tenants=[{"name": "a", "queries": 0}]),
     "tenants[0].queries"),
    ("unknown tenant-sweep field",
     tenant_payload(sweep={"axis": "tenants"}), "sweep.axis"),
    ("empty tenant counts", tenant_payload(sweep={"tenant_counts": []}),
     "sweep.tenant_counts"),
    ("non-positive tenant count",
     tenant_payload(sweep={"tenant_counts": [0]}),
     "sweep.tenant_counts[0]"),
    ("empty arrival scales", tenant_payload(sweep={"arrival_scales": []}),
     "sweep.arrival_scales"),
    ("non-positive arrival scale",
     tenant_payload(sweep={"arrival_scales": [-1]}),
     "sweep.arrival_scales[0]"),
]


class TestValidationRejects:
    @pytest.mark.parametrize(
        "payload,path",
        [case[1:] for case in REJECTIONS],
        ids=[case[0] for case in REJECTIONS],
    )
    def test_rule_violation_names_the_exact_field_path(self, payload, path):
        with pytest.raises(PayloadError) as exc_info:
            validate_payload(payload)
        assert exc_info.value.path == path
        assert str(exc_info.value).startswith(f"{path}: ")

    def test_error_is_a_value_error_with_message(self):
        with pytest.raises(ValueError):
            validate_payload({"scenario": "x"})
        err = PayloadError("a.b", "must be > 0")
        assert err.path == "a.b"
        assert err.message == "must be > 0"


class TestCompilation:
    def test_sweep_spec_carries_catalogue_metadata(self):
        spec = compile_payload(validate_payload(sweep_payload()))
        assert spec.name == "dsl-sweep-test"
        assert spec.backends == ("beacon-d",)
        assert spec.drivers == ("hash-seeding",)
        assert spec.sweep_axes == ("num_switches",)

    def test_sweep_jobs_cover_the_grid_in_order(self):
        data = sweep_payload(backends=["beacon-d", "beacon-s"])
        spec = compile_payload(validate_payload(data))
        keys = [job.key for job in spec.build_jobs(ExperimentScale.quick())]
        assert keys == [
            "beacon-d/Pt/num_switches=1", "beacon-d/Pt/num_switches=2",
            "beacon-s/Pt/num_switches=1", "beacon-s/Pt/num_switches=2",
        ]

    def test_tenant_jobs_cover_counts_and_scales(self):
        data = tenant_payload(
            sweep={"tenant_counts": [1, 3], "arrival_scales": [1.0, 4.0]}
        )
        spec = compile_payload(validate_payload(data))
        keys = [job.key for job in spec.build_jobs(ExperimentScale.quick())]
        assert keys == [
            "beacon-d/tenants=1/arrival=x1",
            "beacon-d/tenants=1/arrival=x4",
            "beacon-d/tenants=3/arrival=x1",
            "beacon-d/tenants=3/arrival=x4",
        ]
        # Count 3 cycles the two declared tenants; the wrapped copy gets
        # a numeric suffix to stay unique.
        tenants = spec.build_jobs(ExperimentScale.quick())[2].args[1]
        assert [t.name for t in tenants] == ["aligner", "counter",
                                             "aligner-2"]

    def test_seed_override_reaches_the_jobs(self):
        spec = compile_payload(validate_payload(tenant_payload()), seed=99)
        job = spec.build_jobs(ExperimentScale.quick())[0]
        assert job.kwargs["seed"] == 99

    def test_register_payload_rejects_name_collisions(self):
        with pytest.raises(ValueError, match="already registered"):
            register_payload(sweep_payload(scenario="fig12"))


class TestRoundTrip:
    def test_sweep_payload_runs_deterministically(self):
        data = sweep_payload(sweep=[])
        scale = ExperimentScale.quick()
        runner = ParallelSweepRunner(jobs=1)
        first = compile_payload(validate_payload(data)).run(scale,
                                                            runner=runner)
        second = compile_payload(validate_payload(data)).run(scale,
                                                             runner=runner)
        prints = fingerprint(first)
        assert prints and prints == fingerprint(second)
        assert all(row[4] > 0 for row in prints)

    def test_multi_tenant_payload_runs_deterministically(self):
        data = tenant_payload()
        scale = ExperimentScale.quick()
        runner = ParallelSweepRunner(jobs=1)
        first = compile_payload(validate_payload(data)).run(scale,
                                                            runner=runner)
        second = compile_payload(validate_payload(data)).run(scale,
                                                             runner=runner)
        assert isinstance(first, MultiTenantResult)
        assert fingerprint(first) == fingerprint(second)
        assert first.points[0].queries == 13

    def test_axis_overrides_change_the_simulated_machine(self):
        scale = ExperimentScale.quick()
        small = run_sweep_point("beacon-d", "hash-seeding", "Pt", scale,
                                (("pe_divisor", 32),), (("k", 13),), "full")
        large = run_sweep_point("beacon-d", "hash-seeding", "Pt", scale,
                                (("pe_divisor", 8),), (("k", 13),), "full")
        assert small.runtime_cycles != large.runtime_cycles


class TestLoading:
    def test_yaml_text_parses(self):
        data = parse_payload_text("scenario: x\nbackends: [beacon-d]\n")
        assert data == {"scenario": "x", "backends": ["beacon-d"]}

    def test_json_text_parses(self):
        text = json.dumps(sweep_payload())
        assert parse_payload_text(text)["scenario"] == "dsl-sweep-test"

    def test_unparseable_text_is_a_payload_error(self):
        with pytest.raises(PayloadError) as exc_info:
            parse_payload_text("{unclosed: [")
        assert exc_info.value.path == "<payload>"

    def test_load_scenario_file_round_trips(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(sweep_payload()))
        spec = load_scenario_file(str(path), seed=5)
        assert spec.name == "dsl-sweep-test"

    def test_repo_examples_validate(self):
        for name in ("examples/multi_tenant.yaml",
                     "examples/custom_scenario.yaml"):
            with open(name, encoding="utf-8") as handle:
                payload = validate_payload(parse_payload_text(handle.read()))
            assert payload.backends


class TestSchemaReference:
    def test_every_axis_and_kind_is_documented(self):
        text = schema_reference()
        for axis in SWEEP_AXES:
            assert axis in text
        for kind in PAYLOAD_KINDS:
            assert kind in text
        for driver, params in DRIVER_PARAMS.items():
            assert driver in text
            for param in params:
                assert param in text

    def test_markdown_table_is_well_formed(self):
        lines = schema_reference(markdown=True).splitlines()
        assert lines[0].startswith("| Field |")
        assert len(lines) == len(SCHEMA_FIELDS) + 2
        assert all(line.count("|") == 5 for line in lines)


class TestCli:
    def test_run_executes_payload_files(self, capsys):
        from repro.__main__ import main

        assert main(["run", "examples/custom_scenario.yaml", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "hash-topology" in out
        assert "num_switches=2" in out

    def test_run_reports_payload_errors_without_traceback(self, capsys,
                                                          tmp_path):
        from repro.__main__ import main

        path = tmp_path / "bad.yaml"
        path.write_text("scenario: x\nbackends: [tpu]\n"
                        "workload: {driver: fm-seeding}\n")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: backends[0]:")
        assert "Traceback" not in err

    def test_validate_accepts_and_rejects(self, capsys, tmp_path):
        from repro.__main__ import main

        assert main(["validate", "examples/multi_tenant.yaml"]) == 0
        assert "ok:" in capsys.readouterr().out
        bad = tmp_path / "bad.yaml"
        bad.write_text("scenario: x\n")
        assert main(["validate", str(bad)]) == 2
        assert "error: backends:" in capsys.readouterr().err

    def test_list_json_names_every_scenario(self, capsys):
        from repro.__main__ import main

        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in data["scenarios"]]
        assert "mt-serving" in names and "fig12" in names
        by_name = {entry["name"]: entry for entry in data["scenarios"]}
        assert by_name["fig12"]["aliases"] == ["fig12_fm_seeding",
                                               "fig12-fm-seeding"]
        assert by_name["mt-serving"]["backends"] == ["beacon-d", "beacon-s"]

    def test_list_dsl_appends_schema(self, capsys):
        from repro.__main__ import main

        assert main(["list", "--dsl"]) == 0
        assert "scenario payload schema" in capsys.readouterr().out

    def test_catalogue_check_passes_on_committed_docs(self, capsys):
        from repro.__main__ import main

        assert main(["catalogue", "--check"]) == 0
        assert "matches the registry" in capsys.readouterr().out
