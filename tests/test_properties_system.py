"""Property-based tests on system-level invariants.

Randomized traffic through the full pool must conserve requests (each
completes exactly once), keep time monotonic, and respect the lower bounds
implied by the physical parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cxl import CommParams
from repro.cxl.topology import MemoryPool
from repro.dram import (ChipInterleaveMapping, DimmGeometry, DimmKind,
                        MemoryRequest, RankInterleaveMapping)
from repro.dram.request import AccessKind
from repro.sim import Engine
from repro.sim.component import Component

GEO = DimmGeometry()


def build_pool(device_bias, packing, num_dimms=4):
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root,
                      CommParams(device_bias=device_bias, data_packing=packing))
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    pool.fabric.add_switch("sw1")
    for i in range(num_dimms):
        pool.add_dimm(f"d{i % 2}.{i // 2}", f"sw{i % 2}", DimmKind.CXLG)
    return engine, pool


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(1, 120),
    device_bias=st.booleans(),
    packing=st.booleans(),
)
def test_every_request_completes_exactly_once(seed, n, device_bias, packing):
    engine, pool = build_pool(device_bias, packing)
    mapping = RankInterleaveMapping(GEO)
    completions = {}
    rng = np.random.default_rng(seed)
    for i in range(n):
        addr = int(rng.integers(0, 1 << 22)) // 64 * 64
        req = MemoryRequest(
            addr=addr, size=int(rng.choice([8, 32, 64])),
            kind=AccessKind.WRITE if rng.random() < 0.3 else AccessKind.READ,
            on_complete=lambda r: completions.__setitem__(
                r.req_id, completions.get(r.req_id, 0) + 1),
        )
        req.coord = mapping.map(addr)
        req.dimm_index = int(rng.integers(0, 4))
        pool.access(req, pool.dimm_nodes[int(rng.integers(0, 4))])
    engine.run()
    assert len(completions) == n
    assert all(count == 1 for count in completions.values())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100))
def test_latency_bounded_below_by_physics(seed):
    """No request can complete faster than DRAM CAS + burst."""
    engine, pool = build_pool(device_bias=True, packing=False)
    mapping = ChipInterleaveMapping(GEO, chips_per_group=16)
    done = []
    rng = np.random.default_rng(seed)
    for _ in range(30):
        addr = int(rng.integers(0, 1 << 20)) // 64 * 64
        req = MemoryRequest(addr=addr, size=64,
                            on_complete=lambda r: done.append(r))
        req.coord = mapping.map(addr)
        req.dimm_index = 0
        pool.access(req, "d0.0")
    engine.run()
    timing = pool.timing
    floor = timing.tcas + timing.tbl
    assert all(r.latency >= floor for r in done)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100), n=st.integers(5, 60))
def test_packing_never_increases_wire_bytes(seed, n):
    """Data packing may only reduce total wire bytes for the same traffic."""
    def run(packing):
        engine, pool = build_pool(device_bias=True, packing=packing)
        mapping = RankInterleaveMapping(GEO)
        done = []
        rng = np.random.default_rng(seed)
        for _ in range(n):
            addr = int(rng.integers(0, 1 << 20)) // 32 * 32
            req = MemoryRequest(addr=addr, size=8,
                                on_complete=lambda r: done.append(r))
            req.coord = mapping.map(addr)
            req.dimm_index = 1
            pool.access(req, "d0.0")
        engine.run()
        assert len(done) == n
        return pool.root_wire_bytes if hasattr(pool, "root_wire_bytes") else \
            pool.stats.total("wire_bytes")

    assert run(True) <= run(False)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 50))
def test_determinism_under_randomized_traffic(seed):
    def run():
        engine, pool = build_pool(device_bias=True, packing=True)
        mapping = RankInterleaveMapping(GEO)
        done = []
        rng = np.random.default_rng(seed)
        for _ in range(40):
            addr = int(rng.integers(0, 1 << 20)) // 64 * 64
            req = MemoryRequest(addr=addr, size=32,
                                on_complete=lambda r: done.append(r))
            req.coord = mapping.map(addr)
            req.dimm_index = int(rng.integers(0, 4))
            pool.access(req, "d0.0")
        engine.run()
        return engine.now, tuple(r.req_id for r in done)

    first = run()
    # Note: req_ids differ across runs (global counter), so compare times
    # and counts only.
    second = run()
    assert first[0] == second[0]
    assert len(first[1]) == len(second[1])
