"""Meta-tests for the scenario layer (repro.experiments.scenarios)."""

import pytest

from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    ensure_registered,
    get_scenario,
    register_scenario,
    resolve_scenario,
    run_scenario,
    scenario_names,
)
from repro.perf.harness import fingerprint

ensure_registered()

#: Scenarios whose result objects carry no Report (they publish counter
#: profiles / energy shares instead); checked via their own payloads.
REPORTLESS = {"fig13", "fig17"}


class TestCatalogue:
    def test_all_campaigns_registered(self):
        assert scenario_names() == [
            "fig3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "sec6g", "scalability", "mt-serving", "mt-saturation",
        ]

    def test_catalogue_metadata_is_declared_everywhere(self):
        # ``python -m repro catalogue`` renders these three fields; every
        # registered spec must declare them (empty tuples would print as
        # blank catalogue cells).
        for name, spec in SCENARIOS.items():
            assert spec.backends, name
            assert spec.drivers, name
            assert spec.sweep_axes, name

    def test_every_spec_is_fully_described(self):
        for spec in SCENARIOS.values():
            assert spec.title
            assert spec.description
            assert callable(spec.build_jobs)
            assert callable(spec.collect)
            assert callable(spec.present)

    def test_resolution_accepts_names_aliases_and_module_spellings(self):
        assert resolve_scenario("fig16") == "fig16"
        assert resolve_scenario("fig16_prealignment") == "fig16"
        assert resolve_scenario("fig12-fm-seeding") == "fig12"
        assert resolve_scenario("summary") == "sec6g"
        assert resolve_scenario("scaling") == "scalability"
        assert resolve_scenario("nope") is None

    def test_get_scenario_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("fig99")

    def test_register_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(ScenarioSpec(
                name="fig12", title="dup", description="dup",
                build_jobs=lambda scale: [], collect=lambda scale, r: r,
            ))


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def quick_results(self):
        # One serial quick-scale pass over the whole catalogue, shared by
        # the assertions below (each scenario is minutes at bench scale,
        # seconds at quick scale).
        scale = ExperimentScale.quick()
        runner = ParallelSweepRunner(jobs=1)
        return {
            name: spec.run(scale, runner=runner)
            for name, spec in SCENARIOS.items()
        }

    def test_every_scenario_yields_a_result(self, quick_results):
        for name, result in quick_results.items():
            assert result is not None, name

    def test_report_scenarios_yield_nonempty_reports(self, quick_results):
        for name, result in quick_results.items():
            if name in REPORTLESS:
                continue
            reports = fingerprint(result)
            assert reports, f"{name} produced no Reports"
            assert all(row[4] > 0 for row in reports), (
                f"{name} produced a zero-cycle report"
            )

    def test_reportless_scenarios_yield_nonempty_payloads(self, quick_results):
        fig13 = quick_results["fig13"]
        assert fig13.without_coalescing and fig13.with_coalescing
        fig17 = quick_results["fig17"]
        assert all(fig17.shares[system] for system in ("beacon-d", "beacon-s"))

    def test_run_scenario_resolves_aliases(self):
        result = run_scenario("fig13_coalescing", ExperimentScale.quick(),
                              runner=ParallelSweepRunner(jobs=1))
        assert result.imbalance_with < result.imbalance_without


class TestCli:
    def test_run_subcommand_executes_scenario(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig13", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "coalescing" in out
        assert "imbalance" in out

    def test_run_subcommand_accepts_alias(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig13-coalescing", "--quick"]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_run_subcommand_rejects_unknown(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "fig99", "--quick"])

    def test_run_subcommand_requires_target(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run"])
