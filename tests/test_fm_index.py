"""Tests for the FM-index: correctness against naive search + trace form."""

import re

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.fm_index import FMIndex, build_suffix_array
from repro.genomics.sequence import encode, random_genome

texts = st.text(alphabet="ACGT", min_size=1, max_size=300)
patterns = st.text(alphabet="ACGT", min_size=1, max_size=12)


def naive_occurrences(text, pattern):
    return [m.start() for m in re.finditer(f"(?={re.escape(pattern)})", text)]


class TestSuffixArray:
    @given(texts)
    def test_orders_all_suffixes(self, text):
        codes = encode(text)
        sa = build_suffix_array(codes)
        n = len(text)
        assert sorted(sa) == list(range(n + 1))
        assert sa[0] == n  # sentinel suffix first
        suffixes = [text[i:] for i in sa[1:]]
        assert suffixes == sorted(suffixes)

    def test_repetitive_text(self):
        text = "A" * 50
        sa = build_suffix_array(encode(text))
        assert list(sa) == list(range(50, -1, -1))


class TestFMIndexCorrectness:
    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            FMIndex("")

    def test_count_on_known_text(self):
        fm = FMIndex("ACGTACGTACGT")
        assert fm.count("ACGT") == 3
        assert fm.count("CGTA") == 2
        assert fm.count("TTTT") == 0

    def test_empty_pattern_rejected(self):
        fm = FMIndex("ACGT")
        with pytest.raises(ValueError):
            fm.search("")

    @settings(max_examples=40)
    @given(texts, patterns)
    def test_locate_matches_naive(self, text, pattern):
        fm = FMIndex(text)
        assert fm.locate(pattern) == naive_occurrences(text, pattern)

    @given(texts)
    def test_every_substring_found(self, text):
        fm = FMIndex(text)
        for length in (1, min(3, len(text)), min(7, len(text))):
            pattern = text[:length]
            assert fm.count(pattern) >= 1

    def test_occ_against_counting(self):
        text = random_genome(2000, seed=11)
        fm = FMIndex(text)
        rng = np.random.default_rng(0)
        for _ in range(50):
            symbol = int(rng.integers(0, 4))
            row = int(rng.integers(0, fm.num_rows + 1))
            expected = int(np.count_nonzero(fm.bwt[:row] == symbol))
            assert fm.occ(symbol, row) == expected

    def test_occ_validation(self):
        fm = FMIndex("ACGT")
        with pytest.raises(ValueError):
            fm.occ(4, 0)
        with pytest.raises(ValueError):
            fm.occ(0, fm.num_rows + 1)


class TestBlockLayout:
    def test_size_and_addresses(self):
        fm = FMIndex(random_genome(5000, seed=1))
        assert fm.size_bytes == fm.num_blocks * FMIndex.BLOCK_BYTES
        assert fm.block_address(0) == 0
        assert fm.block_address(fm.num_blocks - 1) == fm.size_bytes - 32

    def test_block_of_bounds(self):
        fm = FMIndex("ACGT" * 100)
        assert fm.block_of(0) == 0
        assert fm.block_of(fm.num_rows) == fm.num_blocks - 1
        with pytest.raises(ValueError):
            fm.block_of(-1)
        with pytest.raises(ValueError):
            fm.block_address(fm.num_blocks)


class TestSearchTrace:
    @settings(max_examples=25)
    @given(texts, patterns)
    def test_trace_reaches_same_interval(self, text, pattern):
        fm = FMIndex(text)
        steps = list(fm.search_trace(pattern))
        top, bot = fm.search(pattern)
        assert steps, "trace yields at least one step"
        final = steps[-1].interval
        if final[0] >= final[1]:
            assert top >= bot
        else:
            assert final == (top, bot)

    def test_trace_blocks_are_valid_and_deduplicated(self):
        text = random_genome(3000, seed=2)
        fm = FMIndex(text)
        for step in fm.search_trace(text[100:160]):
            assert 1 <= len(step.blocks) <= 2
            assert len(set(step.blocks)) == len(step.blocks)
            for block in step.blocks:
                assert 0 <= block < fm.num_blocks

    def test_trace_stops_on_empty_interval(self):
        fm = FMIndex("AAAA")
        steps = list(fm.search_trace("TTTTTTTT"))
        assert steps[-1].interval[0] >= steps[-1].interval[1]
        assert len(steps) < 8


class TestSeed:
    def test_exact_read_seeds_fully(self):
        text = random_genome(4000, seed=3)
        read = text[500:600]
        fm = FMIndex(text)
        seed = fm.seed(read, min_seed_length=20)
        assert seed is not None
        length, top, bot = seed
        assert length >= 20
        positions = [int(p) for p in fm.suffix_array[top:bot]]
        assert any(p + length == 600 for p in positions)

    def test_unmatchable_read(self):
        fm = FMIndex("A" * 200)
        assert fm.seed("T" * 30, min_seed_length=10) is None

    def test_min_seed_validation(self):
        fm = FMIndex("ACGT")
        with pytest.raises(ValueError):
            fm.seed("ACGT", min_seed_length=0)
