"""Tests for FASTA/FASTQ I/O and workload generation."""

import pytest

from repro.genomics.fasta import (
    FastaRecord,
    FastqRecord,
    iter_fasta,
    read_fasta,
    read_fastq,
    reads_from_file,
    write_fasta,
    write_fastq,
)
from repro.genomics.workloads import (
    KMER_DATASET,
    SEEDING_DATASETS,
    dataset_by_name,
    make_prealign_pairs,
    make_seeding_workload,
)


class TestFasta:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.fa"
        records = [FastaRecord("chr1", "ACGT" * 50), FastaRecord("chr2", "TTTT")]
        write_fasta(path, records, width=13)
        assert read_fasta(path) == records

    def test_streaming_matches_eager(self, tmp_path):
        path = tmp_path / "x.fa"
        records = [FastaRecord("a", "ACGTACGT"), FastaRecord("b", "GGCC")]
        write_fasta(path, records)
        assert list(iter_fasta(path)) == read_fasta(path)

    def test_header_only_name_token(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text(">chr1 description here\nACGT\n")
        assert read_fasta(path) == [FastaRecord("chr1", "ACGT")]

    def test_data_before_header_rejected(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text("ACGT\n>late\nAC\n")
        with pytest.raises(ValueError):
            read_fasta(path)

    def test_invalid_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fa", [], width=0)


class TestFastq:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.fq"
        records = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG", "##")]
        write_fastq(path, records)
        assert read_fastq(path) == records

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_fastq(tmp_path / "x.fq", [FastqRecord("r", "ACGT", "II")])

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "x.fq"
        path.write_text("@r1\nACGT\n+\n")
        with pytest.raises(ValueError):
            read_fastq(path)

    def test_sniffing(self, tmp_path):
        fa = tmp_path / "a.fa"
        write_fasta(fa, [FastaRecord("x", "ACGT")])
        fq = tmp_path / "a.fq"
        write_fastq(fq, [FastqRecord("x", "ACGT", "IIII")])
        assert reads_from_file(fa) == (["ACGT"], "fasta")
        assert reads_from_file(fq) == (["ACGT"], "fastq")
        bad = tmp_path / "a.txt"
        bad.write_text("nope\n")
        with pytest.raises(ValueError):
            reads_from_file(bad)


class TestWorkloads:
    def test_registry(self):
        assert dataset_by_name("Pt").label == "Pinus taeda"
        assert dataset_by_name("Hs50x") is KMER_DATASET
        with pytest.raises(KeyError):
            dataset_by_name("nope")

    def test_deterministic(self):
        a = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
        b = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
        assert a.reference == b.reference
        assert a.reads == b.reads

    def test_scaling(self):
        small = make_seeding_workload(SEEDING_DATASETS[1], scale=0.05)
        big = make_seeding_workload(SEEDING_DATASETS[1], scale=0.1)
        assert len(big.reference) == 2 * len(small.reference)
        assert len(big.reads) == 2 * len(small.reads)

    def test_read_scale_multiplies_reads_only(self):
        base = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
        dense = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05,
                                      read_scale=3.0)
        assert len(dense.reference) == len(base.reference)
        assert len(dense.reads) == 3 * len(base.reads)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_seeding_workload(SEEDING_DATASETS[0], scale=0)
        with pytest.raises(ValueError):
            make_seeding_workload(SEEDING_DATASETS[0], read_scale=0)

    def test_reads_have_spec_length(self):
        w = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
        assert all(len(r) == w.spec.read_length for r in w.reads)
        assert len(w.read_origins) == len(w.reads)


class TestPrealignPairs:
    def test_true_sites_flagged_and_near_match(self):
        w = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05,
                                  error_rate=0.01)
        pairs = make_prealign_pairs(w, max_edits=3, candidates_per_read=4)
        assert len(pairs) == 4 * len(w.reads)
        true_pairs = [p for p in pairs if p.is_true_site]
        assert len(true_pairs) == len(w.reads)
        for pair in true_pairs:
            matches = sum(1 for a, b in zip(pair.read, pair.window[3:]) if a == b)
            assert matches > len(pair.read) * 0.9

    def test_window_starts_in_bounds(self):
        w = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
        for pair in make_prealign_pairs(w, max_edits=3):
            assert 0 <= pair.window_start
            assert pair.window_start + len(pair.window) <= len(w.reference)
            assert w.reference[
                pair.window_start : pair.window_start + len(pair.window)
            ] == pair.window

    def test_candidate_validation(self):
        w = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
        with pytest.raises(ValueError):
            make_prealign_pairs(w, max_edits=3, candidates_per_read=0)
