"""Tests for the BEACON framework User-Interface (Section V)."""

import pytest

from repro.core.config import BeaconConfig
from repro.core.ui import APPLICATIONS, BeaconUI, JobRequest
from repro.genomics.sequence import random_genome
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload

CFG = BeaconConfig().scaled(16)


@pytest.fixture(scope="module")
def data():
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.05)
    return workload.reference, workload.reads, workload.read_origins


class TestJobRequest:
    def test_application_aliases(self):
        for name in APPLICATIONS:
            job = JobRequest(application=name, reference="ACGT", reads=["AC"])
            assert job.algorithm() is APPLICATIONS[name]

    def test_unknown_application(self):
        job = JobRequest(application="folding", reference="ACGT", reads=["AC"])
        with pytest.raises(ValueError, match="unknown application"):
            job.algorithm()


class TestBeaconUI:
    def test_variant_validation(self):
        with pytest.raises(ValueError):
            BeaconUI(variant="beacon-x")

    def test_fm_seeding_job(self, data):
        reference, reads, _origins = data
        ui = BeaconUI(variant="beacon-d", config=CFG)
        report = ui.submit(JobRequest("fm-seeding", reference, reads))
        assert report.tasks_completed == len(reads)
        assert ui.history == [report]

    def test_kmer_job_exposes_filter(self, data):
        reference, reads, _origins = data
        ui = BeaconUI(variant="beacon-s", config=CFG)
        report = ui.submit(JobRequest(
            "kmer-counting", reference, reads,
            parameters={"k": 13, "num_counters": 1 << 14},
        ))
        assert report.algorithm == "kmer_counting"
        assert ui.last_kmer_filter.insertions > 0

    def test_prealignment_needs_origins(self, data):
        reference, reads, origins = data
        ui = BeaconUI(variant="beacon-d", config=CFG)
        with pytest.raises(ValueError, match="read_origins"):
            ui.submit(JobRequest("pre-alignment", reference, reads))
        report = ui.submit(JobRequest(
            "pre-alignment", reference, reads,
            parameters={"read_origins": origins, "max_edits": 3,
                        "candidates_per_read": 2},
        ))
        assert report.tasks_completed == 2 * len(reads)
        assert len(ui.last_prealign_results) == 2 * len(reads)

    def test_empty_reads_rejected(self):
        ui = BeaconUI(config=CFG)
        with pytest.raises(ValueError, match="at least one read"):
            ui.submit(JobRequest("fm-seeding", random_genome(500), []))

    def test_multiple_jobs_accumulate_history(self, data):
        reference, reads, _origins = data
        ui = BeaconUI(variant="beacon-d", config=CFG)
        ui.submit(JobRequest("fm-seeding", reference, reads[:5]))
        ui.submit(JobRequest("hash-seeding", reference, reads[:5]))
        assert len(ui.history) == 2
        assert {r.algorithm for r in ui.history} == {
            "fm_seeding", "hash_seeding"}
