"""Tests for the core building blocks: config, PEs, scheduler, tasks,
metrics, hardware model, atomic engines."""

import pytest

from repro.core import (
    Algorithm,
    BeaconConfig,
    ComputeStep,
    MemStep,
    OptimizationFlags,
    PE_COMPUTE_CYCLES,
    PE_HARDWARE,
    Report,
    Task,
)
from repro.core.hwmodel import beacon_overhead_vs
from repro.core.metrics import geometric_mean
from repro.core.pe import PePool
from repro.core.task import AccessSpec
from repro.core.task_scheduler import TaskScheduler
from repro.sim import Engine
from repro.sim.component import Component


class TestOptimizationFlags:
    def test_vanilla_has_nothing(self):
        v = OptimizationFlags.vanilla()
        assert not any([v.data_packing, v.memory_access_opt, v.data_placement,
                        v.multi_chip_coalescing, v.single_pass_kmer])

    def test_cumulative_order_matches_paper(self):
        steps = OptimizationFlags.cumulative_steps(
            "beacon-d", Algorithm.FM_SEEDING)
        labels = [label for label, _ in steps]
        assert labels == ["CXL-vanilla", "+data packing", "+memory access opt",
                          "+placement & mapping", "+multi-chip coalescing"]
        assert steps[-1][1].multi_chip_coalescing

    def test_algorithm_specific_steps(self):
        d_kmer = OptimizationFlags.cumulative_steps(
            "beacon-d", Algorithm.KMER_COUNTING)
        assert all("coalescing" not in label for label, _ in d_kmer)
        s_kmer = OptimizationFlags.cumulative_steps(
            "beacon-s", Algorithm.KMER_COUNTING)
        assert s_kmer[-1][0] == "+single-pass counting"
        assert s_kmer[-1][1].single_pass_kmer

    def test_cumulative_monotone(self):
        steps = OptimizationFlags.cumulative_steps(
            "beacon-s", Algorithm.HASH_SEEDING)
        enabled = 0
        for _label, flags in steps:
            now = sum([flags.data_packing, flags.memory_access_opt,
                       flags.data_placement, flags.multi_chip_coalescing,
                       flags.single_pass_kmer])
            assert now >= enabled
            enabled = now

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            OptimizationFlags.cumulative_steps("beacon-x", Algorithm.FM_SEEDING)


class TestBeaconConfig:
    def test_table1_defaults(self):
        cfg = BeaconConfig()
        assert cfg.total_dimms == 8
        assert cfg.total_pes_d == 256
        assert cfg.total_pes_s == 512
        assert cfg.baseline_pes_per_dimm * cfg.total_dimms == cfg.total_pes_d

    def test_with_flags_propagates_comm(self):
        cfg = BeaconConfig().with_flags(
            OptimizationFlags(data_packing=True, memory_access_opt=True))
        assert cfg.comm.data_packing
        assert cfg.comm.device_bias

    def test_idealized(self):
        assert BeaconConfig().idealized().comm.ideal

    def test_scaled(self):
        cfg = BeaconConfig().scaled(8)
        assert cfg.pes_per_cxlg == 16
        assert cfg.pes_per_switch == 32
        with pytest.raises(ValueError):
            BeaconConfig().scaled(0)

    def test_pe_latencies_from_paper(self):
        assert PE_COMPUTE_CYCLES[Algorithm.FM_SEEDING] == 16
        assert PE_COMPUTE_CYCLES[Algorithm.HASH_SEEDING] == 10
        assert PE_COMPUTE_CYCLES[Algorithm.KMER_COUNTING] == 59
        assert PE_COMPUTE_CYCLES[Algorithm.PREALIGNMENT] == 82


class TestPePool:
    def test_acquire_release(self):
        engine = Engine()
        root = Component(engine, "sys")
        pool = PePool(engine, "pes", root, num_pes=2)
        assert pool.acquire() and pool.acquire()
        assert not pool.acquire()
        pool.release()
        assert pool.available == 1
        with pytest.raises(ValueError):
            PePool(engine, "bad", root, num_pes=0)

    def test_release_without_acquire(self):
        engine = Engine()
        root = Component(engine, "sys")
        pool = PePool(engine, "pes", root, num_pes=1)
        with pytest.raises(RuntimeError):
            pool.release()

    def test_utilization_accounting(self):
        engine = Engine()
        root = Component(engine, "sys")
        pool = PePool(engine, "pes", root, num_pes=2)
        pool.acquire()
        engine.schedule(100, pool.release)
        engine.run()
        assert abs(pool.utilization(100) - 0.5) < 1e-9

    def test_compute_recording(self):
        engine = Engine()
        root = Component(engine, "sys")
        pool = PePool(engine, "pes", root, num_pes=1)
        pool.record_compute(Algorithm.FM_SEEDING, 16)
        pool.record_compute(Algorithm.KMER_COUNTING, 59)
        assert pool.total_compute_cycles == 75
        assert pool.stats.get("compute_cycles.fm_seeding") == 16


class TestTaskScheduler:
    def _sched(self):
        engine = Engine()
        root = Component(engine, "sys")
        return TaskScheduler(engine, "sched", root)

    def _task(self):
        return Task(algorithm=Algorithm.FM_SEEDING, steps=iter(()))

    def test_ready_queue_fifo(self):
        sched = self._sched()
        t1, t2 = self._task(), self._task()
        sched.push_ready(t1)
        sched.push_ready(t2)
        assert sched.pop_ready() is t1
        assert sched.pop_ready() is t2
        assert sched.pop_ready() is None

    def test_operand_scoreboard(self):
        sched = self._sched()
        task = self._task()
        sched.park(task, operands=3)
        assert sched.waiting_count == 1
        sched.operand_ready(task)
        sched.operand_ready(task)
        assert sched.ready_count == 0
        sched.operand_ready(task)
        assert sched.ready_count == 1
        assert sched.waiting_count == 0

    def test_on_ready_hook(self):
        sched = self._sched()
        hits = []
        sched.on_ready = lambda: hits.append(1)
        sched.push_ready(self._task())
        assert hits == [1]

    def test_park_validation(self):
        sched = self._sched()
        with pytest.raises(ValueError):
            sched.park(self._task(), operands=0)
        with pytest.raises(RuntimeError):
            sched.operand_ready(self._task())

    def test_idle(self):
        sched = self._sched()
        assert sched.idle
        task = self._task()
        sched.park(task, 1)
        assert not sched.idle


class TestReport:
    def _report(self, runtime, energy):
        return Report(label="x", system="s", algorithm="a", dataset="d",
                      runtime_cycles=runtime, tck_ns=1.25,
                      energy_dram_nj=energy * 0.5, energy_comm_nj=energy * 0.4,
                      energy_compute_nj=energy * 0.1, tasks_completed=1)

    def test_ratios(self):
        fast = self._report(100, 10)
        slow = self._report(400, 40)
        assert fast.speedup_vs(slow) == 4.0
        assert fast.energy_reduction_vs(slow) == 4.0
        assert fast.percent_of_ideal(self._report(90, 9)) == 0.9

    def test_fractions(self):
        r = self._report(100, 10)
        assert abs(r.comm_energy_fraction - 0.4) < 1e-9
        assert abs(r.compute_energy_fraction - 0.1) < 1e-9

    def test_units(self):
        r = self._report(800, 10)
        assert r.runtime_ns == 1000.0
        assert r.runtime_us == 1.0

    def test_summary_contains_key_numbers(self):
        text = self._report(800, 10).summary()
        assert "us" in text and "tasks" in text

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, 0])


class TestHardwareModel:
    def test_table2_values(self):
        assert PE_HARDWARE["MEDAL"].area_um2 == pytest.approx(8941.39)
        assert PE_HARDWARE["NEST"].area_um2 == pytest.approx(16721.12)
        assert PE_HARDWARE["BEACON"].area_um2 == pytest.approx(14090.23)

    def test_paper_relations(self):
        beacon = PE_HARDWARE["BEACON"]
        assert PE_HARDWARE["MEDAL"].area_um2 < beacon.area_um2 < \
            PE_HARDWARE["NEST"].area_um2
        # BEACON has the lowest leakage of the three.
        assert beacon.leakage_power_uw == min(
            hw.leakage_power_uw for hw in PE_HARDWARE.values())

    def test_overhead_ratios(self):
        ratios = beacon_overhead_vs("NEST")
        assert ratios["area_ratio"] < 1.0
        ratios = beacon_overhead_vs("MEDAL")
        assert ratios["area_ratio"] > 1.0

    def test_compute_energy_model(self):
        hw = PE_HARDWARE["BEACON"]
        energy = hw.compute_energy_nj(busy_cycles=1000, total_cycles=2000,
                                      tck_ns=1.25, num_pes=4)
        assert energy > 0
        more = hw.compute_energy_nj(busy_cycles=2000, total_cycles=2000,
                                    tck_ns=1.25, num_pes=4)
        assert more > energy


class TestTaskSteps:
    def test_step_types(self):
        c = ComputeStep(16)
        m = MemStep([AccessSpec(addr=0, size=32)])
        assert c.cycles == 16
        assert m.accesses[0].size == 32

    def test_task_ids_unique(self):
        a = Task(algorithm=Algorithm.FM_SEEDING, steps=iter(()))
        b = Task(algorithm=Algorithm.FM_SEEDING, steps=iter(()))
        assert a.task_id != b.task_id


class TestReportSerialization:
    def _report(self):
        return Report(label="x", system="beacon-d", algorithm="fm_seeding",
                      dataset="Pt", runtime_cycles=1000, tck_ns=1.25,
                      energy_dram_nj=10.0, energy_comm_nj=5.0,
                      energy_compute_nj=1.0, tasks_completed=7,
                      mem_requests=42, wire_bytes=100.0, useful_bytes=80.0,
                      extra={"pe_utilization": 0.5})

    def test_roundtrip_dict(self):
        report = self._report()
        clone = Report.from_dict(report.to_dict())
        assert clone.runtime_cycles == report.runtime_cycles
        assert clone.total_energy_nj == report.total_energy_nj
        assert clone.extra == report.extra

    def test_derived_fields_in_dict(self):
        data = self._report().to_dict()
        assert data["total_energy_nj"] == 16.0
        assert data["comm_energy_fraction"] == pytest.approx(5 / 16)

    def test_json_roundtrip(self, tmp_path):
        report = self._report()
        path = tmp_path / "report.json"
        report.save_json(path)
        loaded = Report.load_json(path)
        assert loaded.to_dict() == report.to_dict()
