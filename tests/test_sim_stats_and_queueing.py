"""Unit tests for the stats tree and bounded queues."""

import pytest

from repro.sim import BoundedQueue, QueueFullError, StatScope
from repro.sim.stats import Histogram


class TestStatScope:
    def test_counters_add_and_get(self):
        scope = StatScope("root")
        scope.add("hits")
        scope.add("hits", 2)
        assert scope.get("hits") == 3
        assert scope.get("misses") == 0

    def test_set_overwrites(self):
        scope = StatScope("root")
        scope.add("x", 5)
        scope.set("x", 1)
        assert scope.get("x") == 1

    def test_child_scopes_are_cached(self):
        scope = StatScope("root")
        assert scope.child("a") is scope.child("a")

    def test_path(self):
        scope = StatScope("root")
        assert scope.child("a").child("b").path == "root.a.b"

    def test_total_aggregates_subtree(self):
        root = StatScope("root")
        root.add("energy", 1)
        root.child("a").add("energy", 2)
        root.child("a").child("b").add("energy", 3)
        root.child("c").add("energy", 4)
        assert root.total("energy") == 10
        assert root.child("a").total("energy") == 5

    def test_histograms(self):
        scope = StatScope("root")
        for v in (1, 2, 3, 4):
            scope.record("lat", v)
        hist = scope.histogram("lat")
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.maximum == 4
        assert hist.minimum == 1

    def test_as_dict_nests(self):
        root = StatScope("root")
        root.add("x", 1)
        root.child("a").add("y", 2)
        snapshot = root.as_dict()
        assert snapshot["x"] == 1
        assert snapshot["a"]["y"] == 2


class TestHistogram:
    def test_percentile_bounds(self):
        hist = Histogram()
        for v in range(100):
            hist.record(v)
        assert hist.percentile(0) == 0
        assert hist.percentile(100) == 99
        assert 48 <= hist.percentile(50) <= 51

    def test_percentile_validation(self):
        hist = Histogram()
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram_summary(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_reservoir_seed_is_set(self):
        # The reservoir RNG must be explicitly seeded before the first
        # replacement decision (sim/stats.py asserts this at run time).
        assert Histogram.RESERVOIR_SEED is not None
        hist = Histogram(cap=4)
        for v in range(10):
            hist.record(v)
        assert hist._rng is not None
        assert hist.saturated

    def test_reservoir_identical_across_hash_seeds(self, tmp_path):
        """Two identical runs keep identical reservoir contents even under
        different PYTHONHASHSEED values (regression: the reservoir must not
        inherit any interpreter-level randomization)."""
        import json
        import os
        import subprocess
        import sys
        import textwrap

        script = tmp_path / "reservoir_run.py"
        script.write_text(textwrap.dedent(
            """
            import json, sys
            from repro.sim.stats import Histogram

            hist = Histogram(cap=64)
            for v in range(10_000):
                hist.record((v * 2654435761) % 100_003)
            json.dump(hist.values, sys.stdout)
            """
        ))
        outputs = []
        for hash_seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True, text=True, env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1] == outputs[2]
        assert len(outputs[0]) == 64


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue("q")
        for i in range(5):
            q.push(i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        q = BoundedQueue("q", capacity=2)
        q.push(1)
        q.push(2)
        assert q.full()
        with pytest.raises(QueueFullError):
            q.push(3)
        assert not q.try_push(3)
        q.pop()
        assert q.try_push(3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", capacity=0)

    def test_push_notification(self):
        q = BoundedQueue("q")
        hits = []
        q.on_push(lambda: hits.append(len(q)))
        q.push("a")
        q.push("b")
        assert hits == [1, 2]

    def test_peek_and_remove(self):
        q = BoundedQueue("q")
        q.push("a")
        q.push("b")
        assert q.peek() == "a"
        q.remove("b")
        assert len(q) == 1
        assert q.pop() == "a"

    def test_pop_empty_raises(self):
        q = BoundedQueue("q")
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_occupancy_stats(self):
        q = BoundedQueue("q")
        q.push(1)
        q.push(2)
        q.pop()
        q.push(3)
        assert q.pushes == 3
        assert q.pops == 1
        assert q.max_occupancy == 2


class TestBoundedQueueTombstones:
    """Out-of-order removal is tombstoned (O(1)), not spliced; the FIFO
    view through pop/peek/items must be unaffected."""

    def test_remove_middle_preserves_fifo(self):
        q = BoundedQueue("q")
        items = [object() for _ in range(5)]
        for item in items:
            q.push(item)
        q.remove(items[2])
        assert len(q) == 4
        assert list(q.items()) == [items[0], items[1], items[3], items[4]]
        assert [q.pop() for _ in range(4)] == \
            [items[0], items[1], items[3], items[4]]
        assert q.empty()

    def test_double_remove_raises(self):
        q = BoundedQueue("q")
        a, b = object(), object()
        q.push(a)
        q.push(b)
        q.remove(b)
        with pytest.raises(ValueError):
            q.remove(b)

    def test_pop_and_peek_skip_tombstoned_head_run(self):
        q = BoundedQueue("q")
        items = [object() for _ in range(4)]
        for item in items:
            q.push(item)
        q.pop()                 # head leaves first ...
        q.remove(items[1])      # ... then the new head is tombstoned
        q.remove(items[2])
        assert q.peek() is items[3]
        assert q.pop() is items[3]
        assert not q

    def test_removal_is_by_identity(self):
        q = BoundedQueue("q")
        first, second = [1], [1]   # equal but distinct
        q.push(first)
        q.push(second)
        q.remove(second)
        assert list(q.items()) == [first]
        assert q.pop() is first

    def test_capacity_frees_on_tombstone(self):
        q = BoundedQueue("q", capacity=2)
        a, b = object(), object()
        q.push(a)
        q.push(b)
        assert q.full()
        q.remove(b)
        assert not q.full()
        q.push(object())
        assert q.full()

    def test_many_removals_compact_the_deque(self):
        q = BoundedQueue("q")
        items = [object() for _ in range(64)]
        for item in items:
            q.push(item)
        survivor = items[0]
        for item in items[1:]:
            q.remove(item)
        assert len(q) == 1
        # The amortized rebuild keeps the backing deque from holding all
        # 63 tombstones forever.
        assert len(q._items) < 32
        assert q.pop() is survivor
