"""Meta-tests keeping docs/SCENARIOS.md honest.

Every ``yaml`` fence in the authoring guide must hold a payload that
validates (and runs at quick scale); the committed catalogue table must
match the registry; and the schema table must mention every field the
validator knows about.  If any of these fail, the guide has drifted
from the code.
"""

import re

import pytest

from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments.catalogue import (
    check_docs_sync,
    embedded_catalogue,
    render_markdown,
    render_text,
)
from repro.experiments.dsl import (
    SCHEMA_FIELDS,
    compile_payload,
    parse_payload_text,
    validate_payload,
)

DOCS = "docs/SCENARIOS.md"

_YAML_FENCE = re.compile(r"```yaml\n(.*?)```", re.DOTALL)


def _docs_text():
    with open(DOCS, encoding="utf-8") as handle:
        return handle.read()


def _yaml_blocks():
    return _YAML_FENCE.findall(_docs_text())


class TestDocsYamlBlocks:
    def test_the_guide_has_worked_examples(self):
        assert len(_yaml_blocks()) >= 3

    @pytest.mark.parametrize("index", range(3))
    def test_every_yaml_block_parses_and_validates(self, index):
        blocks = _yaml_blocks()
        payload = validate_payload(parse_payload_text(blocks[index]))
        assert payload.name
        assert payload.backends

    def test_every_yaml_block_runs_at_quick_scale(self):
        runner = ParallelSweepRunner(jobs=1)
        scale = ExperimentScale.quick()
        for block in _yaml_blocks():
            spec = compile_payload(validate_payload(
                parse_payload_text(block)
            ))
            result = spec.run(scale, runner=runner)
            assert result is not None, spec.name


class TestCatalogueSync:
    def test_committed_catalogue_matches_registry(self):
        ok, message = check_docs_sync(DOCS)
        assert ok, message

    def test_markers_are_required(self):
        with pytest.raises(ValueError, match="markers"):
            embedded_catalogue("no markers here")

    def test_renderings_cover_every_scenario(self):
        from repro.experiments.scenarios import scenario_names

        markdown = render_markdown()
        text = render_text()
        for name in scenario_names():
            assert f"`{name}`" in markdown
            assert name in text


class TestSchemaCoverage:
    def test_docs_mention_every_schema_field(self):
        text = _docs_text()
        for doc in SCHEMA_FIELDS:
            assert f"`{doc.path}`" in text, (
                f"docs/SCENARIOS.md is missing schema field {doc.path!r}; "
                "regenerate the schema table from "
                "repro.experiments.dsl.schema_reference(markdown=True)"
            )

    def test_docs_link_the_examples(self):
        text = _docs_text()
        assert "examples/multi_tenant.yaml" in text
        assert "examples/custom_scenario.yaml" in text
