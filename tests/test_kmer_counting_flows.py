"""Tests for the single-pass and multi-pass k-mer counting flows."""

import pytest

from repro.genomics.kmer_counting import (
    MultiPassKmerCounter,
    SinglePassKmerCounter,
    exact_counts,
)
from repro.genomics.sequence import random_genome


def sample_reads(n=30, length=60, seed=5):
    genome = random_genome(4000, seed=seed)
    return [genome[i * 37 : i * 37 + length] for i in range(n)]


class TestExactCounts:
    def test_counts_canonical(self):
        counts = exact_counts(["ACGTA"], 4)
        # ACGT is its own reverse complement; CGTA canonicalizes to min form.
        assert sum(counts.values()) == 2

    def test_multiple_reads_accumulate(self):
        counts = exact_counts(["AAAAA", "AAAAA"], 5)
        assert counts == {"AAAAA": 2}


class TestSinglePass:
    def test_counts_at_least_truth(self):
        reads = sample_reads()
        counter = SinglePassKmerCounter(1 << 15, k=13)
        counter.process(reads)
        for kmer, count in exact_counts(reads, 13).items():
            assert counter.count(kmer) >= count

    def test_trace_yields_every_insertion(self):
        reads = sample_reads(n=5)
        counter = SinglePassKmerCounter(1 << 14, k=13)
        events = list(counter.process_trace(reads))
        expected = sum(max(0, len(r) - 12) for r in reads)
        assert len(events) == expected
        for _kmer, slots in events:
            assert len(slots) == counter.filter.num_hashes
            assert all(0 <= s < counter.filter.num_counters for s in slots)


class TestMultiPass:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPassKmerCounter(1 << 10, k=13, num_partitions=0)

    def test_partitioning_is_balanced(self):
        counter = MultiPassKmerCounter(1 << 10, k=13, num_partitions=4)
        shards = counter.partition_reads([f"r{i}" for i in range(10)])
        assert [len(s) for s in shards] == [3, 3, 2, 2]

    def test_requires_merge_before_query(self):
        counter = MultiPassKmerCounter(1 << 10, k=13, num_partitions=2)
        with pytest.raises(RuntimeError):
            counter.pass_two_count("ACGTACGTACGTA")

    def test_counts_at_least_truth(self):
        reads = sample_reads()
        counter = MultiPassKmerCounter(1 << 15, k=13, num_partitions=4)
        counter.run(reads)
        for kmer, count in exact_counts(reads, 13).items():
            assert counter.count(kmer) >= count

    def test_matches_single_pass_filter_state(self):
        """Merging local filters must equal one filter fed everything."""
        reads = sample_reads()
        multi = MultiPassKmerCounter(1 << 14, k=13, num_partitions=3)
        multi.run(reads)
        single = SinglePassKmerCounter(1 << 14, k=13)
        single.process(reads)
        assert (multi.global_filter.counters == single.filter.counters).all()

    def test_flow_accounting(self):
        counter = MultiPassKmerCounter(1 << 12, k=13, num_partitions=4)
        assert counter.input_passes == 2
        counter.run(sample_reads(n=8))
        assert counter.replicated_bytes == counter.global_filter.size_bytes * 4
