"""Tests for the DDR4 refresh engine."""

import numpy as np

from repro.dram import (Dimm, DimmController, DimmGeometry, DimmKind,
                        MemoryRequest, RankInterleaveMapping)
from repro.sim import Engine
from repro.sim.component import Component

GEO = DimmGeometry()


def make_setup():
    engine = Engine()
    root = Component(engine, "sys")
    dimm = Dimm(engine, "dimm", root, DimmKind.CXLG)
    ctrl = DimmController(engine, "mc", root, dimm)
    return engine, dimm, ctrl


def drive(ctrl, n, seed=0, spacing=0):
    mapping = RankInterleaveMapping(GEO)
    done = []
    rng = np.random.default_rng(seed)
    for i in range(n):
        addr = int(rng.integers(0, 1 << 22)) // 64 * 64
        req = MemoryRequest(addr=addr, size=64,
                            on_complete=lambda r: done.append(r))
        req.coord = mapping.map(addr)
        ctrl.submit_when_possible(req)
    return done


def test_refresh_fires_during_long_activity():
    engine, dimm, ctrl = make_setup()
    # Keep the DIMM busy past several tREFI windows by trickling requests.
    mapping = RankInterleaveMapping(GEO)
    done = []

    def trickle(i=0):
        if i >= 60:
            return
        addr = (i * 977) % (1 << 20) // 64 * 64
        req = MemoryRequest(addr=addr, size=64,
                            on_complete=lambda r: done.append(r))
        req.coord = mapping.map(addr)
        ctrl.submit_when_possible(req)
        engine.schedule(400, lambda: trickle(i + 1))

    trickle()
    engine.run()
    assert len(done) == 60
    assert dimm.refresh.refreshes >= 2
    assert dimm.stats.get("energy_refresh_nj") > 0


def test_refresh_goes_dormant_so_simulation_quiesces():
    engine, dimm, ctrl = make_setup()
    done = drive(ctrl, 20)
    engine.run()  # must terminate despite the periodic refresh engine
    assert len(done) == 20
    # After quiescence, the engine queue is empty.
    assert engine.pending_events == 0


def test_refresh_rearms_after_dormancy():
    engine, dimm, ctrl = make_setup()
    drive(ctrl, 10, seed=1)
    engine.run()
    first_round = dimm.refresh.refreshes
    # New burst of traffic far in the future: refresh must re-arm.
    engine.schedule(0, lambda: None)
    mapping = RankInterleaveMapping(GEO)
    done = []

    def trickle(i=0):
        if i >= 40:
            return
        req = MemoryRequest(addr=(i * 4096) % (1 << 20), size=64,
                            on_complete=lambda r: done.append(r))
        req.coord = mapping.map(req.addr)
        ctrl.submit_when_possible(req)
        engine.schedule(500, lambda: trickle(i + 1))

    trickle()
    engine.run()
    assert len(done) == 40
    assert dimm.refresh.refreshes > first_round


def test_refresh_closes_rows():
    engine, dimm, ctrl = make_setup()
    mapping = RankInterleaveMapping(GEO)
    done = []

    def probe(addr):
        req = MemoryRequest(addr=addr, size=64,
                            on_complete=lambda r: done.append(r))
        req.coord = mapping.map(addr)
        ctrl.submit_when_possible(req)

    probe(0)
    # Re-touch the same row after a refresh interval: the row was closed by
    # REF, so the second access needs a fresh activate.
    engine.schedule(dimm.timing.trefi + dimm.timing.trfc + 100, lambda: probe(0))
    engine.run()
    assert len(done) == 2
    assert dimm.total_activations >= 2 * GEO.chips_per_rank
