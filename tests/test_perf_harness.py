"""Tests for the perf-regression harness (repro.perf).

``python -m repro bench`` times every figure at quick scale and asserts the
optimized path (plan cache on, optional fan-out) reproduces the
serial/uncached reference bit-for-bit.  These tests exercise the harness
itself on a single cheap figure so the full suite stays fast.
"""

import json

import pytest

from repro.core.metrics import Report
from repro.perf import (
    BENCH_SCHEMA,
    BenchMismatchError,
    FigureBenchResult,
    bench_figures,
    fingerprint,
    run_bench,
)
from repro.perf.harness import BENCH_FIGURES


def _report(cycles: int, label: str = "r") -> Report:
    return Report(
        label=label, system="beacon-d", algorithm="fm_seeding", dataset="d1",
        runtime_cycles=cycles, tck_ns=0.75, energy_dram_nj=1.0,
        energy_comm_nj=2.0, energy_compute_nj=3.0, tasks_completed=4,
        mem_requests=5,
    )


# -- fingerprinting ----------------------------------------------------------------


def test_fingerprint_reaches_nested_reports():
    nested = {"a": [_report(10, "x")], "b": (_report(20, "y"),)}
    prints = fingerprint(nested)
    assert [p[0] for p in prints] == ["x", "y"]
    assert [p[4] for p in prints] == [10, 20]


def test_fingerprint_is_exact():
    assert fingerprint(_report(10)) == fingerprint(_report(10))
    assert fingerprint(_report(10)) != fingerprint(_report(11))


def test_fingerprint_of_reportless_object_is_empty():
    assert fingerprint({"numbers": [1, 2, 3]}) == []


# -- harness mechanics -------------------------------------------------------------


def test_unknown_figure_rejected():
    with pytest.raises(ValueError, match="unknown bench figures"):
        bench_figures(figures=["fig99"])


def test_bench_catalog_covers_every_figure_module():
    assert set(BENCH_FIGURES) == {
        "fig3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "sec6g", "scalability", "mt-serving", "mt-saturation",
    }


def test_mismatch_error_is_an_assertion():
    # So plain ``pytest`` / CI treats a divergence as a test failure.
    assert issubclass(BenchMismatchError, AssertionError)


def test_events_per_sec_guards_zero_wall():
    result = FigureBenchResult(name="x", wall_s=0.0, events=100)
    assert result.events_per_sec == 0.0


# -- end-to-end on one cheap figure ------------------------------------------------


def test_run_bench_writes_verified_baseline(tmp_path):
    output = tmp_path / "BENCH_results.json"
    payload = run_bench(figures=["fig13"], jobs=1, verify=True,
                        output=str(output), progress=None, repeats=1)

    assert payload["schema"] == BENCH_SCHEMA
    assert payload["scale"] == "quick"
    assert payload["jobs"] == 1
    assert payload["repeats"] == 1
    assert payload["previous"] is None  # nothing overwritten
    entry = payload["figures"]["fig13"]
    assert entry["wall_s"] > 0
    assert entry["events"] > 0
    assert entry["events_per_sec"] > 0
    # The bit-identical check against the serial/uncached reference ran
    # and passed — the whole point of the harness.
    assert entry["verified_identical"] is True
    # repro-bench/3: the scheduler used, its occupancy, and a timed
    # comparison run under every other registered scheduler (with
    # fingerprint parity asserted inside bench_figures).
    assert entry["scheduler"] == "wheel"
    occ = entry["occupancy"]["wheel"]
    assert occ["events_enqueued"] > 0
    assert occ["cycles_started"] > 0
    assert occ["max_batch"] >= 1
    assert occ["avg_batch"] > 0
    heap_run = entry["schedulers"]["heap"]
    assert heap_run["events_per_sec"] > 0
    assert heap_run["verified_identical"] is True
    assert payload["total_wall_s"] >= entry["wall_s"]

    on_disk = json.loads(output.read_text())
    assert on_disk["schema"] == BENCH_SCHEMA
    assert on_disk["figures"]["fig13"]["verified_identical"] is True


def test_run_bench_embeds_previous_baseline(tmp_path):
    output = tmp_path / "BENCH_results.json"
    output.write_text(json.dumps({
        "schema": "repro-bench/2",
        "created_unix": 123.0,
        "figures": {"fig13": {"events_per_sec": 50.0, "wall_s": 1.0}},
    }))
    payload = run_bench(figures=["fig13"], jobs=1, verify=False,
                        output=str(output), progress=None, repeats=1,
                        schedulers=())
    previous = payload["previous"]
    assert previous["schema"] == "repro-bench/2"
    assert previous["created_unix"] == 123.0
    assert previous["events_per_sec"] == {"fig13": 50.0}
    expected = payload["figures"]["fig13"]["events_per_sec"] / 50.0
    assert previous["geomean_speedup"] == pytest.approx(expected)


def test_bench_without_verify_skips_reference(tmp_path):
    results = bench_figures(figures=["fig13"], jobs=1, verify=False)
    (entry,) = results
    assert entry.name == "fig13"
    assert entry.verified_identical is None
    assert entry.schedulers is None  # no comparison runs requested


def test_bench_rejects_unknown_scheduler():
    with pytest.raises(ValueError, match="unknown schedulers"):
        bench_figures(figures=["fig13"], verify=False,
                      schedulers=["splay-tree"])
