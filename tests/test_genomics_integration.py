"""Cross-module genomics integration tests: the pipeline works functionally
end to end, independent of the simulator."""

import numpy as np
import pytest

from repro.genomics.fm_index import FMIndex
from repro.genomics.hash_index import HashIndex
from repro.genomics.kmer_counting import SinglePassKmerCounter, exact_counts
from repro.genomics.prealign import ShoujiFilter, banded_edit_distance
from repro.genomics.sequence import reverse_complement
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload


@pytest.fixture(scope="module")
def workload():
    return make_seeding_workload(SEEDING_DATASETS[0], scale=0.1,
                                 error_rate=0.01)


class TestSeedingRecall:
    def test_fm_seeding_finds_true_origin_for_clean_reads(self, workload):
        fm = FMIndex(workload.reference)
        hits = 0
        clean = 0
        for read, origin in zip(workload.reads, workload.read_origins):
            for oriented in (read, reverse_complement(read)):
                if workload.reference[origin:origin + len(read)] == oriented:
                    clean += 1
                    seed = fm.seed(oriented, min_seed_length=20)
                    assert seed is not None
                    length, top, bot = seed
                    positions = [int(p) for p in fm.suffix_array[top:bot]]
                    # The seed is a read *suffix*: it ends at origin + len.
                    assert any(
                        p + length == origin + len(read) for p in positions
                    )
                    hits += 1
        assert clean > 0
        assert hits == clean

    def test_hash_seeding_recall(self, workload):
        reference = workload.reference
        k = 13
        index = HashIndex(reference, k=k, stride=1,
                          num_buckets=max(64, (len(reference) - k + 1) // 4))
        recalled = 0
        considered = 0
        for read, origin in zip(workload.reads[:50], workload.read_origins[:50]):
            for oriented in (read, reverse_complement(read)):
                if workload.reference[origin:origin + len(read)] != oriented:
                    continue
                considered += 1
                found = False
                for query in index.seed_read(oriented):
                    if any(abs(loc - origin) <= len(read) for loc in query.locations):
                        found = True
                        break
                recalled += found
        assert considered > 0
        assert recalled == considered


class TestPipelineConsistency:
    def test_prealign_agrees_with_banded_edit_distance(self, workload):
        """Accepted pairs really are near-matches; rejected true-distance-0
        pairs must not exist (conservativeness at the pipeline level)."""
        filt = ShoujiFilter(max_edits=3)
        reference = workload.reference
        rng = np.random.default_rng(3)
        for _ in range(30):
            start = int(rng.integers(0, len(reference) - 110))
            read = reference[start + 3 : start + 103]
            window = reference[start : start + 106]
            result = filt.filter(read, window)
            distance = banded_edit_distance(read, window[3:103], band=3)
            if distance == 0:
                assert result.accepted
            if not result.accepted:
                assert distance > 0

    def test_kmer_counts_match_reference_implementation(self, workload):
        reads = workload.reads[:40]
        counter = SinglePassKmerCounter(1 << 16, k=15)
        counter.process(reads)
        truth = exact_counts(reads, 15)
        # Spot-check overcount rate is small at this load factor.
        overcounts = sum(
            1 for kmer, count in truth.items()
            if counter.count(kmer) > count
        )
        assert overcounts / len(truth) < 0.02
        assert all(counter.count(k) >= min(v, counter.filter.saturation)
                   for k, v in truth.items())
