"""Cross-cutting energy-accounting tests: the report's breakdown equals the
sum of its parts, refresh energy is included, idealized links are free."""

import pytest

from repro.core import Algorithm, BeaconConfig, BeaconD, OptimizationFlags
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload

CFG = BeaconConfig().scaled(16)


@pytest.fixture(scope="module")
def run_pair():
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.06,
                                     read_scale=2.0)
    flags = OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING)
    real_sys = BeaconD(config=CFG, flags=flags)
    real = real_sys.run_fm_seeding(workload)
    ideal_sys = BeaconD(config=CFG.idealized(), flags=flags)
    ideal = ideal_sys.run_fm_seeding(workload)
    return real_sys, real, ideal_sys, ideal


def test_breakdown_sums_to_total(run_pair):
    _sys, real, _isys, _ideal = run_pair
    assert real.total_energy_nj == pytest.approx(
        real.energy_dram_nj + real.energy_comm_nj + real.energy_compute_nj
    )
    assert real.energy_dram_nj > 0
    assert real.energy_comm_nj > 0
    assert real.energy_compute_nj > 0


def test_report_dram_energy_matches_dimm_models(run_pair):
    system, real, _isys, _ideal = run_pair
    per_dimm = sum(d.energy.total_nj() for d in system.pool.dimms)
    assert real.energy_dram_nj == pytest.approx(per_dimm)


def test_idealized_links_consume_no_comm_energy(run_pair):
    _sys, _real, _isys, ideal = run_pair
    assert ideal.energy_comm_nj == 0.0


def test_comm_energy_matches_fabric_rollup(run_pair):
    system, real, _isys, _ideal = run_pair
    assert real.energy_comm_nj == pytest.approx(
        system.pool.fabric.comm_energy_pj() / 1000.0
    )


def test_background_energy_scales_with_runtime():
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.06,
                                     read_scale=2.0)
    vanilla = BeaconD(config=CFG, flags=OptimizationFlags.vanilla())
    slow = vanilla.run_fm_seeding(workload)
    fast_sys = BeaconD(config=CFG, flags=OptimizationFlags.all_for(
        "beacon-d", Algorithm.FM_SEEDING))
    fast = fast_sys.run_fm_seeding(workload)
    slow_bg = vanilla.root.stats.total("energy_background_nj")
    fast_bg = fast_sys.root.stats.total("energy_background_nj")
    assert slow.runtime_cycles > fast.runtime_cycles
    assert slow_bg > fast_bg
    assert slow_bg / fast_bg == pytest.approx(
        slow.runtime_cycles / fast.runtime_cycles, rel=0.01)
