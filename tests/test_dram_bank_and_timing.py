"""Tests for DDR4 timing parameters and the bank state machine."""

import pytest

from repro.dram.bank import Bank
from repro.dram.timing import DramTiming, DimmGeometry

T = DramTiming()


class TestTiming:
    def test_table1_values(self):
        assert (T.tcas, T.trcd, T.trp) == (22, 22, 22)
        assert T.tck_ns == 1.25

    def test_derived(self):
        assert T.trc == T.tras + T.trp
        assert T.row_hit_read == T.tcas + T.tbl
        assert T.row_closed_read == T.trcd + T.tcas + T.tbl
        assert T.row_miss_read == T.trp + T.trcd + T.tcas + T.tbl

    def test_conversions(self):
        assert T.cycles_to_ns(4) == 5.0
        assert T.ns_to_cycles(5.0) == 4
        assert T.ns_to_cycles(5.1) == 5  # ceiling
        assert T.ns_to_cycles(0) == 0


class TestBankClassify:
    def test_closed_bank_needs_activate(self):
        bank = Bank()
        pre, act = bank.classify(5, T, is_write=False)
        assert act
        assert pre == T.trcd + T.tcas

    def test_row_hit(self):
        bank = Bank(open_row=5)
        pre, act = bank.classify(5, T, is_write=False)
        assert not act
        assert pre == T.tcas

    def test_row_conflict(self):
        bank = Bank(open_row=4)
        pre, act = bank.classify(5, T, is_write=False)
        assert act
        assert pre == T.trp + T.trcd + T.tcas

    def test_write_uses_write_latency(self):
        bank = Bank(open_row=5)
        pre, _ = bank.classify(5, T, is_write=True)
        assert pre == T.twl


class TestBankCommit:
    def test_commit_opens_row_and_counts(self):
        bank = Bank()
        pre, act = bank.classify(7, T, False)
        finish = bank.commit(0, 7, pre, 4, act, T, False)
        assert bank.open_row == 7
        assert bank.activations == 1
        assert bank.row_misses == 1
        assert finish == pre + 4
        assert bank.free_at == finish

    def test_hit_then_conflict_counters(self):
        bank = Bank()
        for row, expect in ((1, "miss"), (1, "hit"), (2, "conflict")):
            pre, act = bank.classify(row, T, False)
            start = bank.earliest_start(bank.free_at, act, T)
            bank.commit(start, row, pre, 4, act, T, False)
        assert bank.row_misses == 1
        assert bank.row_hits == 1
        assert bank.row_conflicts == 1
        assert bank.activations == 2

    def test_trc_enforced_between_activates(self):
        bank = Bank()
        pre, act = bank.classify(1, T, False)
        bank.commit(0, 1, pre, 4, act, T, False)
        first_act = bank.last_act_at
        pre2, act2 = bank.classify(2, T, False)
        start = bank.earliest_start(0, act2, T)
        assert start >= first_act + T.tras  # conflicting row honors tRAS
        bank.commit(start, 2, pre2, 4, act2, T, False)
        assert bank.last_act_at >= first_act + T.tras

    def test_write_recovery_extends_busy(self):
        bank = Bank()
        pre, act = bank.classify(3, T, True)
        finish = bank.commit(0, 3, pre, 4, act, T, True)
        assert bank.free_at == finish + T.twr

    def test_earliest_start_respects_free_at(self):
        bank = Bank(open_row=1, free_at=100)
        pre, act = bank.classify(1, T, False)
        assert bank.earliest_start(50, act, T) == 100
        assert bank.earliest_start(150, act, T) == 150
