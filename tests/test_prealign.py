"""Tests for the Shouji-style pre-alignment filter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.prealign import (
    ShoujiFilter,
    banded_edit_distance,
    edit_distance,
)
from repro.genomics.sequence import mutate, random_genome

dna = st.text(alphabet="ACGT", min_size=8, max_size=60)


class TestEditDistanceReference:
    def test_known_cases(self):
        assert edit_distance("", "") == 0
        assert edit_distance("ACGT", "ACGT") == 0
        assert edit_distance("ACGT", "AGGT") == 1
        assert edit_distance("ACGT", "CGT") == 1
        assert edit_distance("ACGT", "") == 4

    @given(dna, dna)
    def test_symmetry_and_bounds(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(dna)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(dna, dna)
    def test_banded_agrees_within_band(self, a, b):
        band = 5
        true = edit_distance(a, b)
        banded = banded_edit_distance(a, b, band)
        if true <= band:
            assert banded == true
        else:
            assert banded == band + 1

    def test_banded_validation(self):
        with pytest.raises(ValueError):
            banded_edit_distance("A", "A", -1)


class TestShoujiFilter:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShoujiFilter(-1)
        with pytest.raises(ValueError):
            ShoujiFilter(2, window_size=0)
        with pytest.raises(ValueError):
            ShoujiFilter(2).filter("", "ACGT")

    def test_exact_match_accepted(self):
        genome = random_genome(500, seed=1)
        filt = ShoujiFilter(max_edits=3)
        assert filt.accepts(genome[100:164], genome[97:170])

    def test_zero_edit_threshold(self):
        filt = ShoujiFilter(max_edits=0)
        assert filt.accepts("ACGTACGT", "ACGTACGT")
        assert not filt.accepts("ACGTACGT", "ACGTACGA")

    @settings(max_examples=40)
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_no_false_negatives_for_substitutions(self, offset, edits):
        """A pair within the substitution budget is never rejected —
        the conservativeness guarantee the pipeline relies on."""
        genome = random_genome(12_000, seed=7)
        start = offset % (len(genome) - 80)
        read = genome[start : start + 64]
        rng = np.random.default_rng(offset)
        mutated = list(read)
        for pos in rng.choice(64, size=edits, replace=False):
            mutated[pos] = {"A": "C", "C": "G", "G": "T", "T": "A"}[mutated[pos]]
        window = genome[max(0, start - 3) : start + 67]
        filt = ShoujiFilter(max_edits=3)
        assert filt.accepts("".join(mutated), window)

    def test_estimated_edits_monotonic_in_errors(self):
        genome = random_genome(2000, seed=9)
        read = genome[500:600]
        filt = ShoujiFilter(max_edits=5)
        estimates = []
        for rate in (0.0, 0.05, 0.3):
            noisy = mutate(read, rate, seed=3)
            estimates.append(filt.filter(noisy, genome[495:605]).estimated_edits)
        assert estimates[0] <= estimates[1] <= estimates[2]

    def test_random_window_usually_rejected(self):
        genome = random_genome(20_000, seed=3)
        filt = ShoujiFilter(max_edits=3)
        read = genome[1000:1100]
        rejections = sum(
            not filt.accepts(read, genome[5000 + 200 * i : 5106 + 200 * i])
            for i in range(20)
        )
        assert rejections >= 18  # decoys overwhelmingly filtered out

    def test_result_fields(self):
        filt = ShoujiFilter(max_edits=2)
        result = filt.filter("ACGTACGT", "ACGTACGTAA")
        assert result.threshold == 2
        assert result.accepted == (result.estimated_edits <= 2)
