"""Tests for the backend registry (repro.core.registry)."""

import pytest

from repro.core.config import Algorithm, BeaconConfig, OptimizationFlags
from repro.core.metrics import Report
from repro.core.registry import (
    AnalyticSystemFactory,
    backend_names,
    build_system,
    get_backend,
    register_backend,
)
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload
from repro.sim.engine import SimulationError


def _tiny_workload():
    return make_seeding_workload(SEEDING_DATASETS[0], scale=0.02)


class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(backend_names()) == {
            "beacon-d", "beacon-s", "medal", "nest", "ddr-ndp", "cpu",
        }

    def test_backend_names_round_trip(self):
        # Every registered name resolves to a factory whose name is the
        # lookup key, and every factory builds a system exposing the
        # run_algorithm protocol.
        config = BeaconConfig().scaled(16)
        flags = OptimizationFlags.vanilla()
        for name in backend_names():
            factory = get_backend(name)
            assert factory.name == name
            assert factory.description
            system = factory.build(config, flags)
            assert callable(system.run_algorithm)

    def test_aliases_resolve_to_canonical_factory(self):
        assert get_backend("cpu48") is get_backend("cpu")
        assert get_backend("ddr") is get_backend("ddr-ndp")
        # Aliases are surfaced only on request.
        assert "cpu48" not in backend_names()
        assert "cpu48" in backend_names(include_aliases=True)

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(ValueError, match="beacon-d"):
            build_system("tpu", BeaconConfig().scaled(16),
                         OptimizationFlags.vanilla())

    def test_register_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(AnalyticSystemFactory(
                name="cpu", description="duplicate", make=object,
            ))

    def test_label_defaults_to_backend_name(self):
        config = BeaconConfig().scaled(16)
        system = build_system("beacon-d", config, OptimizationFlags.vanilla())
        assert system.label == "beacon-d"
        labelled = build_system("beacon-d", config,
                                OptimizationFlags.vanilla(), label="probe")
        assert labelled.label == "probe"

    def test_built_system_runs_a_workload(self):
        config = BeaconConfig().scaled(16)
        system = build_system("beacon-d", config, OptimizationFlags.vanilla())
        report = system.run_algorithm(Algorithm.FM_SEEDING, _tiny_workload())
        assert isinstance(report, Report)
        assert report.tasks_completed > 0


class TestSingleShotGuard:
    def test_second_workload_raises_simulation_error(self):
        # Regression (satellite S1): simulated systems are single-shot —
        # re-dispatching onto a drained engine must fail loudly, with a
        # pointed message naming the fix.
        config = BeaconConfig().scaled(16)
        system = build_system("beacon-d", config, OptimizationFlags.vanilla())
        workload = _tiny_workload()
        system.run_fm_seeding(workload)
        with pytest.raises(SimulationError) as excinfo:
            system.run_hash_seeding(workload)
        message = str(excinfo.value)
        assert "single-shot" in message
        assert "repro.core.registry.build_system" in message

    def test_guard_applies_across_all_driver_entry_points(self):
        config = BeaconConfig().scaled(16)
        workload = _tiny_workload()
        for method, kwargs in (
            ("run_fm_seeding", {}),
            ("run_hash_seeding", {}),
            ("run_kmer_counting", {"num_counters": 1 << 12}),
            ("run_prealignment", {}),
        ):
            system = build_system("beacon-s", config,
                                  OptimizationFlags.vanilla())
            getattr(system, method)(workload, **kwargs)
            with pytest.raises(SimulationError, match="single-shot"):
                getattr(system, method)(workload, **kwargs)

    def test_cpu_baseline_is_reusable(self):
        # The analytic model holds no engine state, so it is exempt.
        cpu = get_backend("cpu").build(BeaconConfig().scaled(16),
                                       OptimizationFlags.vanilla())
        workload = _tiny_workload()
        first = cpu.run_fm_seeding(workload)
        second = cpu.run_fm_seeding(workload)
        assert first.runtime_cycles == second.runtime_cycles
