"""Tests for the Section V extension point (custom applications)."""

import numpy as np
import pytest

from repro.core import Algorithm, BeaconConfig, BeaconD, BeaconS, OptimizationFlags
from repro.core.custom import CustomApplication, probe_steps

CFG = BeaconConfig().scaled(16)
FLAGS = OptimizationFlags(data_packing=True, memory_access_opt=True,
                          data_placement=True)


class TestCustomApplication:
    def test_validation(self):
        with pytest.raises(ValueError):
            CustomApplication(name="", compute_cycles=4)
        with pytest.raises(ValueError):
            CustomApplication(name="x", compute_cycles=-1)

    def test_task_wrapping(self):
        app = CustomApplication(name="probe", compute_cycles=24)
        task = app.task(iter(()), payload_bytes=16)
        assert task.algorithm is Algorithm.CUSTOM
        assert task.payload_bytes == 16
        assert app.compute().cycles == 24


class TestCustomRegion:
    def test_random_probe_region(self):
        system = BeaconD(config=CFG, flags=FLAGS)
        region = system.allocate_custom_region("idx", 1 << 16,
                                               spatially_local=False)
        assert region.size == 1 << 16
        assert len(region.layout.dimm_indices) >= 1

    def test_spatially_local_region(self):
        system = BeaconD(config=CFG, flags=FLAGS)
        region = system.allocate_custom_region("log", 1 << 16,
                                               spatially_local=True)
        mapping = next(iter(region.mappings.values()))
        coords = [mapping.map(a) for a in range(0, 1024, 128)]
        assert len({(c.rank, c.bank, c.row) for c in coords}) == 1


@pytest.mark.parametrize("system_cls", [BeaconD, BeaconS])
def test_custom_run_end_to_end(system_cls):
    system = system_cls(config=CFG, flags=FLAGS)
    app = CustomApplication(name="db_probe", compute_cycles=24)
    region = system.allocate_custom_region("idx", 1 << 18)
    rng = np.random.default_rng(1)
    tasks = [
        app.task(probe_steps(
            app,
            [int(a) // 8 * 8 for a in rng.integers(0, (1 << 18) - 8, size=4)],
            region.base,
        ))
        for _ in range(40)
    ]
    report = system.run_custom(app, tasks)
    assert report.tasks_completed == 40
    assert report.algorithm == "custom"
    assert report.mem_requests == 40 * 4
    assert report.runtime_cycles > 0


def test_custom_and_builtin_share_machinery():
    """A custom run exercises the same PEs/scheduler/fabric — compute
    cycles land in the CUSTOM bucket."""
    system = BeaconD(config=CFG, flags=FLAGS)
    app = CustomApplication(name="probe", compute_cycles=10)
    region = system.allocate_custom_region("idx", 1 << 14)
    tasks = [app.task(probe_steps(app, [0, 8, 64], region.base))
             for _ in range(5)]
    system.run_custom(app, tasks)
    busy = sum(m.pes.stats.get("compute_cycles.custom", 0)
               for m in system.ndp_modules)
    assert busy == 5 * 3 * 10
