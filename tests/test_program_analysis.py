"""Tests for repro.analysis.program: the whole-program lint layer.

Fixture mini-packages (violating + clean variants) per program rule,
call-graph edge cases (aliased imports, method-vs-function shadowing,
``functools.partial``), cross-file suppression semantics, the
``repro-lint/2`` report round-trip, the warm-lint cache (parity and
invalidation), SARIF export, and ``--changed`` scoping.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    LINT_SCHEMA,
    PROGRAM_RULES,
    LintCache,
    lint_paths,
    summarize_source,
    to_sarif,
)
from repro.analysis.cli import main as lint_cli


def write_tree(root, files):
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    return root


def rule_findings(root, rule_id):
    report = lint_paths([root], rules=[rule_id])
    return [f for f in report.findings if f.rule == rule_id]


# A two-hop wall-clock taint: sim code -> helper -> clock read.
WALL_TAINT_TREE = {
    "util.py": """
        import time

        def read_clock():
            return time.time()

        def helper():
            return read_clock()
    """,
    "sim/engine.py": """
        from util import helper

        def step():
            return helper()
    """,
}


class TestTransitiveWallClock:
    def test_two_hop_taint_reaches_sim_call_site(self, tmp_path):
        write_tree(tmp_path, WALL_TAINT_TREE)
        findings = rule_findings(tmp_path, "transitive-wall-clock")
        assert [f.path for f in findings] == ["sim/engine.py"]
        finding = findings[0]
        assert "wall-clock read" in finding.message
        assert "time.time" in finding.message
        # Witness chain: flagged call site -> helper -> read_clock -> source.
        assert len(finding.paths) >= 3
        assert finding.paths[0][0] == "sim/engine.py"
        assert finding.paths[-1][0] == "util.py"
        assert finding.paths[-1][2].startswith("time.time")

    def test_clean_twin_has_no_findings(self, tmp_path):
        write_tree(tmp_path, {
            "util.py": """
                def helper(engine):
                    return engine.now
            """,
            "sim/engine.py": """
                from util import helper

                def step(engine):
                    return helper(engine)
            """,
        })
        assert rule_findings(tmp_path, "transitive-wall-clock") == []

    def test_taint_outside_ordered_dirs_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "util.py": WALL_TAINT_TREE["util.py"],
            "tools/report.py": """
                from util import helper

                def stamp():
                    return helper()
            """,
        })
        assert rule_findings(tmp_path, "transitive-wall-clock") == []

    def test_call_site_suppression(self, tmp_path):
        tree = dict(WALL_TAINT_TREE)
        tree["sim/engine.py"] = """
            from util import helper

            def step():
                # repro: allow[transitive-wall-clock] -- telemetry only.
                return helper()
        """
        write_tree(tmp_path, tree)
        report = lint_paths([tmp_path], rules=["transitive-wall-clock"])
        assert [f.rule for f in report.active] == []
        assert [f.rule for f in report.suppressed] == [
            "transitive-wall-clock"
        ]
        assert "telemetry only" in report.suppressed[0].reason

    def test_cross_file_root_suppression_clears_downstream(self, tmp_path):
        """Sanctioning the source de-taints every caller in other files."""
        tree = dict(WALL_TAINT_TREE)
        tree["util.py"] = """
            import time

            def read_clock():
                # repro: allow[transitive-wall-clock] -- host-side only.
                return time.time()

            def helper():
                return read_clock()
        """
        write_tree(tmp_path, tree)
        assert rule_findings(tmp_path, "transitive-wall-clock") == []

    def test_boundary_suppression_stops_cascade_midway(self, tmp_path):
        """A suppressed call edge de-taints its (transitive) callers."""
        write_tree(tmp_path, {
            "util.py": WALL_TAINT_TREE["util.py"],
            "bridge.py": """
                from util import helper

                def record():
                    # repro: allow[transitive-wall-clock] -- provenance.
                    return helper()
            """,
            "sim/engine.py": """
                from bridge import record

                def step():
                    return record()
            """,
        })
        assert rule_findings(tmp_path, "transitive-wall-clock") == []


class TestTransitiveUnseededRng:
    def test_global_rng_taint(self, tmp_path):
        write_tree(tmp_path, {
            "noise.py": """
                import random

                def jitter():
                    return random.random()
            """,
            "genomics/sample.py": """
                from noise import jitter

                def draw():
                    return jitter()
            """,
        })
        findings = rule_findings(tmp_path, "transitive-unseeded-rng")
        assert [f.path for f in findings] == ["genomics/sample.py"]
        assert "RNG" in findings[0].message
        assert findings[0].paths[-1][0] == "noise.py"

    def test_seeded_twin_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "noise.py": """
                import random

                def jitter(seed):
                    return random.Random(seed).random()
            """,
            "genomics/sample.py": """
                from noise import jitter

                def draw(seed):
                    return jitter(seed)
            """,
        })
        assert rule_findings(tmp_path, "transitive-unseeded-rng") == []


class TestSweepJobPicklable:
    def test_lambda_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "jobs.py": """
                from repro.experiments import SweepJob

                def build():
                    return SweepJob("k", lambda: 1)
            """,
        })
        findings = rule_findings(tmp_path, "sweep-job-picklable")
        assert len(findings) == 1
        assert "lambda passed to SweepJob()" in findings[0].message

    def test_local_def_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "jobs.py": """
                from repro.experiments import SweepJob

                def build():
                    def point():
                        return 1
                    return SweepJob("k", point)
            """,
        })
        findings = rule_findings(tmp_path, "sweep-job-picklable")
        assert len(findings) == 1
        assert "'point'" in findings[0].message
        assert "hoist it to module level" in findings[0].message

    def test_partial_over_lambda_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "jobs.py": """
                import functools

                from repro.experiments import SweepJob

                def build():
                    return SweepJob("k", functools.partial(lambda x: x, 1))
            """,
        })
        findings = rule_findings(tmp_path, "sweep-job-picklable")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_module_level_def_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "jobs.py": """
                import functools

                from repro.experiments import SweepJob

                def point(x):
                    return x

                def build():
                    return [
                        SweepJob("a", point),
                        SweepJob("b", functools.partial(point, 1)),
                        SweepJob("c", func=point),
                    ]
            """,
        })
        assert rule_findings(tmp_path, "sweep-job-picklable") == []


SCHEMA_REGISTRY = """
    SCHEMAS = {"bench": "repro-bench/2"}

    LEGACY_SCHEMA_IDS = frozenset({"repro-bench/1"})
"""


class TestSchemaIdRegistry:
    def test_emit_site_with_superseded_id_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "schemas.py": SCHEMA_REGISTRY,
            "emitter.py": """
                def stale():
                    return {"schema": "repro-bench/1"}
            """,
        })
        findings = rule_findings(tmp_path, "schema-id-registry")
        assert len(findings) == 1
        assert "not registered for emit sites" in findings[0].message
        assert "superseded" in findings[0].message
        assert findings[0].paths[0][2] == "SCHEMAS"

    def test_unregistered_literal_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "schemas.py": SCHEMA_REGISTRY,
            "emitter.py": """
                def typo():
                    return "repro-bnech/9"
            """,
        })
        findings = rule_findings(tmp_path, "schema-id-registry")
        assert len(findings) == 1
        assert "not in the SCHEMAS registry" in findings[0].message

    def test_registry_backed_emit_and_legacy_check_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "schemas.py": SCHEMA_REGISTRY,
            "emitter.py": """
                from schemas import SCHEMAS

                def good():
                    return {"schema": SCHEMAS["bench"]}

                def checker(payload):
                    return payload.get("schema") in (
                        "repro-bench/1", "repro-bench/2"
                    )
            """,
        })
        assert rule_findings(tmp_path, "schema-id-registry") == []

    def test_unknown_family_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "schemas.py": SCHEMA_REGISTRY,
            "emitter.py": """
                from schemas import SCHEMAS

                def bad():
                    return {"schema": SCHEMAS["nope"]}
            """,
        })
        findings = rule_findings(tmp_path, "schema-id-registry")
        assert len(findings) == 1
        assert "unregistered schema family" in findings[0].message

    def test_rule_dormant_without_a_registry(self, tmp_path):
        write_tree(tmp_path, {
            "emitter.py": """
                def stale():
                    return {"schema": "repro-bench/1"}
            """,
        })
        assert rule_findings(tmp_path, "schema-id-registry") == []


class TestExportDocSync:
    def doc_tree(self, table_rows, exports):
        rows = "\n".join(f"| `{name}` | a thing |" for name in table_rows)
        return {
            "docs/API.md": (
                "# API\n\n## `repro` — fixture package\n\n"
                "| name | what it is |\n|---|---|\n" + rows + "\n"
            ),
            "repro/__init__.py": f"""
                class Thing:
                    pass

                class Hidden:
                    pass

                __all__ = {exports!r}
            """,
        }

    def test_undocumented_export_flagged(self, tmp_path):
        write_tree(
            tmp_path, self.doc_tree(["Thing"], ["Hidden", "Thing"])
        )
        findings = rule_findings(tmp_path, "export-doc-sync")
        assert len(findings) == 1
        assert "repro.Hidden is exported via __all__" in findings[0].message
        assert findings[0].path == "repro/__init__.py"

    def test_documented_ghost_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            self.doc_tree(["Thing", "Hidden", "Gone"], ["Hidden", "Thing"]),
        )
        findings = rule_findings(tmp_path, "export-doc-sync")
        assert len(findings) == 1
        assert "'Gone'" in findings[0].message
        assert findings[0].paths[0][0] == "docs/API.md"

    def test_synced_doc_is_clean(self, tmp_path):
        write_tree(
            tmp_path, self.doc_tree(["Thing", "Hidden"], ["Hidden", "Thing"])
        )
        assert rule_findings(tmp_path, "export-doc-sync") == []

    def test_rule_dormant_without_api_doc(self, tmp_path):
        tree = self.doc_tree(["Thing"], ["Hidden", "Thing"])
        del tree["docs/API.md"]
        write_tree(tmp_path, tree)
        assert rule_findings(tmp_path, "export-doc-sync") == []


class TestCallGraphEdgeCases:
    def test_aliased_import_resolves(self, tmp_path):
        write_tree(tmp_path, {
            "util.py": WALL_TAINT_TREE["util.py"],
            "sim/engine.py": """
                from util import helper as h

                def step():
                    return h()
            """,
        })
        findings = rule_findings(tmp_path, "transitive-wall-clock")
        assert [f.path for f in findings] == ["sim/engine.py"]

    def test_method_vs_function_shadowing(self, tmp_path):
        """An annotated receiver picks the method, not the same-named
        module function; an unimported bare name gets no edge."""
        write_tree(tmp_path, {
            "dev.py": """
                import time

                class Device:
                    def reset(self):
                        return time.time()

                def reset():
                    return 0
            """,
            "sim/run.py": """
                from dev import Device

                def go(d: Device):
                    return d.reset()

                def local():
                    return reset()
            """,
        })
        findings = rule_findings(tmp_path, "transitive-wall-clock")
        assert len(findings) == 1
        assert "Device.reset" in findings[0].message

    def test_ambiguous_receiver_gets_no_edge(self, tmp_path):
        """Two classes defining the method and no annotation: no edge,
        no finding — the graph under-approximates."""
        write_tree(tmp_path, {
            "a.py": """
                import time

                class A:
                    def tick(self):
                        return time.time()
            """,
            "b.py": """
                class B:
                    def tick(self):
                        return 0
            """,
            "sim/amb.py": """
                def go(x):
                    return x.tick()
            """,
        })
        assert rule_findings(tmp_path, "transitive-wall-clock") == []

    def test_self_call_resolves_through_class(self, tmp_path):
        write_tree(tmp_path, {
            "sim/comp.py": """
                import time

                class Component:
                    def _stamp(self):
                        return time.time()

                    def run(self):
                        return self._stamp()
            """,
        })
        findings = rule_findings(tmp_path, "transitive-wall-clock")
        assert len(findings) == 1
        assert "Component._stamp" in findings[0].message


class TestReportRoundTrip:
    def test_lint2_schema_and_paths(self, tmp_path):
        write_tree(tmp_path, WALL_TAINT_TREE)
        report = lint_paths([tmp_path])
        payload = report.to_dict()
        assert payload["schema"] == LINT_SCHEMA == "repro-lint/2"
        program = [
            f for f in payload["findings"]
            if f["rule"] == "transitive-wall-clock"
        ]
        assert program, payload["findings"]
        hops = program[0]["paths"]
        assert all(set(h) == {"path", "line", "symbol"} for h in hops)
        # Round-trips through JSON byte-identically.
        text = json.dumps(payload, indent=2, sort_keys=True)
        assert json.loads(text) == payload

    def test_per_file_findings_have_no_paths_key(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
        payload = lint_paths([tmp_path]).to_dict()
        finding = payload["findings"][0]
        assert finding["rule"] == "no-mutable-default-arg"
        assert "paths" not in finding

    def test_program_rules_listed_in_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n")
        payload = lint_paths([tmp_path]).to_dict()
        for rule_id in PROGRAM_RULES:
            assert rule_id in payload["rules"]
        assert "transitive-wall-clock" not in lint_paths(
            [tmp_path], program=False
        ).to_dict()["rules"]


class TestLintCache:
    def make_tree(self, tmp_path):
        return write_tree(tmp_path / "tree", WALL_TAINT_TREE)

    def test_warm_report_is_byte_identical(self, tmp_path):
        tree = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cold_cache = LintCache(cache_path)
        cold = lint_paths([tree], cache=cold_cache)
        cold_cache.save()
        assert cache_path.is_file()

        warm_cache = LintCache(cache_path)
        assert warm_cache._entries  # the store round-tripped
        warm = lint_paths([tree], cache=warm_cache)
        cold_text = json.dumps(cold.to_dict(), indent=2, sort_keys=True)
        warm_text = json.dumps(warm.to_dict(), indent=2, sort_keys=True)
        assert cold_text == warm_text

    def test_edited_file_invalidates_its_entry(self, tmp_path):
        tree = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache = LintCache(cache_path)
        first = lint_paths([tree], cache=cache)
        cache.save()
        assert any(
            f.rule == "transitive-wall-clock" for f in first.findings
        )

        (tree / "util.py").write_text(
            "def read_clock():\n    return 0\n\n"
            "def helper():\n    return read_clock()\n"
        )
        second = lint_paths([tree], cache=LintCache(cache_path))
        assert not any(
            f.rule == "transitive-wall-clock" for f in second.findings
        )

    def test_cache_ignored_with_rule_filter(self, tmp_path):
        tree = self.make_tree(tmp_path)
        cache = LintCache(tmp_path / "cache.json")
        lint_paths([tree], rules=["no-wall-clock"], cache=cache)
        cache.save()
        assert not (tmp_path / "cache.json").exists()


class TestSarifExport:
    def test_sarif_shape(self, tmp_path):
        write_tree(tmp_path, WALL_TAINT_TREE)
        sarif = to_sarif(lint_paths([tmp_path]))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "transitive-wall-clock" in rule_ids
        results = [
            r for r in run["results"]
            if r["ruleId"] == "transitive-wall-clock"
        ]
        assert results
        result = results[0]
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "sim/engine.py"
        assert location["region"]["startColumn"] >= 1
        assert len(result["relatedLocations"]) >= 3

    def test_suppressed_findings_become_notes(self, tmp_path):
        write_tree(tmp_path, {
            "sim/x.py": """
                import time

                # repro: allow[no-wall-clock] -- test fixture waiver.
                NOW = time.time()
            """,
        })
        sarif = to_sarif(lint_paths([tmp_path]))
        results = sarif["runs"][0]["results"]
        assert results[0]["level"] == "note"
        assert results[0]["suppressions"][0]["kind"] == "inSource"
        assert "waiver" in results[0]["suppressions"][0]["justification"]


class TestChangedScoping:
    def test_per_file_findings_scoped_program_findings_kept(self, tmp_path):
        write_tree(tmp_path, WALL_TAINT_TREE)
        full = lint_paths([tmp_path])
        assert any(f.rule == "no-wall-clock" for f in full.findings)

        scoped = lint_paths([tmp_path], changed_only=["sim/engine.py"])
        rules = {f.rule for f in scoped.findings}
        assert "no-wall-clock" not in rules  # util.py not "changed"
        assert "transitive-wall-clock" in rules  # program rules: full graph

    def test_empty_changed_set_still_runs_program_rules(self, tmp_path):
        write_tree(tmp_path, WALL_TAINT_TREE)
        scoped = lint_paths([tmp_path], changed_only=[])
        assert {f.rule for f in scoped.findings} == {
            "transitive-wall-clock"
        }


class TestCli:
    def test_each_program_rule_exits_nonzero_on_seeded_violation(
        self, tmp_path, capsys
    ):
        trees = {
            "transitive-wall-clock": WALL_TAINT_TREE,
            "transitive-unseeded-rng": {
                "noise.py": "import random\n\n\ndef jitter():\n"
                            "    return random.random()\n",
                "genomics/s.py": "from noise import jitter\n\n\n"
                                 "def draw():\n    return jitter()\n",
            },
            "sweep-job-picklable": {
                "jobs.py": "def build():\n"
                           "    return SweepJob('k', lambda: 1)\n",
            },
            "schema-id-registry": {
                "schemas.py": textwrap.dedent(SCHEMA_REGISTRY),
                "emitter.py": "def stale():\n"
                              "    return {'schema': 'repro-bench/1'}\n",
            },
            "export-doc-sync": {
                "docs/API.md": "## `repro` — pkg\n\n| name | x |\n"
                               "|---|---|\n| `Gone` | y |\n",
                "repro/__init__.py": "__all__ = []\n",
            },
        }
        for rule_id, files in trees.items():
            root = tmp_path / rule_id
            write_tree(root, files)
            assert lint_cli([str(root), "--no-cache"]) == 1, rule_id
            assert rule_id in capsys.readouterr().out

    def test_no_program_skips_program_rules(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "jobs.py": "def build():\n"
                       "    return SweepJob('k', lambda: 1)\n",
        })
        assert lint_cli([str(tmp_path), "--no-cache"]) == 1
        capsys.readouterr()
        assert lint_cli([str(tmp_path), "--no-cache", "--no-program"]) == 0

    def test_rule_filter_accepts_program_rule(self, tmp_path, capsys):
        write_tree(tmp_path, WALL_TAINT_TREE)
        assert lint_cli(
            [str(tmp_path), "--rule", "transitive-wall-clock"]
        ) == 1
        out = capsys.readouterr().out
        assert "via util.py:" in out  # witness chain is printed
        assert lint_cli([str(tmp_path), "--rule", "no-set-iteration-order"]) == 0

    def test_sarif_output(self, tmp_path, capsys):
        write_tree(tmp_path, WALL_TAINT_TREE)
        out_file = tmp_path / "out.sarif"
        assert lint_cli(
            [str(tmp_path), "--no-cache", "--sarif", str(out_file)]
        ) == 1
        payload = json.loads(out_file.read_text())
        assert payload["version"] == "2.1.0"

    def test_list_rules_includes_program_rules(self, capsys):
        assert lint_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in PROGRAM_RULES:
            assert rule_id in out


class TestSummaries:
    def test_summarize_source_shape(self):
        summary = summarize_source(
            "import time\n\n\ndef f():\n    return time.time()\n",
            "pkg/mod.py",
        )
        assert summary["module"] == "pkg.mod"
        assert "f" in summary["functions"]
        assert summary["functions"]["f"]["taint"]["wall"]

    def test_unparsable_source_yields_stub_summary(self):
        summary = summarize_source("def broken(:\n", "pkg/mod.py")
        assert summary["unparsed"] is True


class TestRegistryHygiene:
    def test_program_rules_registered(self):
        expected = {
            "transitive-wall-clock",
            "transitive-unseeded-rng",
            "sweep-job-picklable",
            "schema-id-registry",
            "export-doc-sync",
        }
        assert expected <= set(PROGRAM_RULES)

    def test_program_and_file_registries_disjoint(self):
        from repro.analysis import RULES

        assert not set(RULES) & set(PROGRAM_RULES)
