"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


def test_runs_events_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(10, lambda: order.append("b"))
    eng.schedule(5, lambda: order.append("a"))
    eng.schedule(20, lambda: order.append("c"))
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 20


def test_same_cycle_events_run_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(7, lambda i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_zero_delay_event_runs_after_queued_same_cycle_events():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(0, lambda: order.append("nested"))

    eng.schedule(1, first)
    eng.schedule(1, lambda: order.append("second"))
    eng.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    eng = Engine()
    hits = []
    eng.schedule_at(42, lambda: hits.append(eng.now))
    eng.run()
    assert hits == [42]


def test_schedule_at_past_rejected():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_run_until_stops_clock_without_dropping_events():
    eng = Engine()
    hits = []
    eng.schedule(5, lambda: hits.append(5))
    eng.schedule(50, lambda: hits.append(50))
    eng.run(until=10)
    assert hits == [5]
    assert eng.now == 10
    eng.run()
    assert hits == [5, 50]


def test_run_until_advances_clock_when_queue_drains_early():
    eng = Engine()
    eng.schedule(3, lambda: None)
    eng.run(until=100)
    assert eng.now == 100


def test_stop_halts_run():
    eng = Engine()
    hits = []
    eng.schedule(1, lambda: (hits.append(1), eng.stop()))
    eng.schedule(2, lambda: hits.append(2))
    eng.run()
    assert hits == [1]
    eng.run()
    assert hits == [1, 2]


def test_max_events_guard():
    eng = Engine()

    def rearm():
        eng.schedule(1, rearm)

    eng.schedule(1, rearm)
    with pytest.raises(SimulationError):
        eng.run(max_events=100)


def test_engine_not_reentrant():
    eng = Engine()
    errors = []

    def reenter():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(1, reenter)
    eng.run()
    assert len(errors) == 1


def test_events_executed_counter():
    eng = Engine()
    for _ in range(7):
        eng.schedule(1, lambda: None)
    eng.run()
    assert eng.events_executed == 7


def test_determinism_of_interleaved_schedules():
    def build_and_run():
        eng = Engine()
        trace = []

        def emit(tag, reschedule):
            trace.append((eng.now, tag))
            if reschedule > 0:
                eng.schedule(reschedule, lambda: emit(tag + "'", 0))

        eng.schedule(3, lambda: emit("a", 4))
        eng.schedule(3, lambda: emit("b", 2))
        eng.schedule(1, lambda: emit("c", 6))
        eng.run()
        return trace

    assert build_and_run() == build_and_run()


def test_max_events_executes_exactly_n():
    eng = Engine()
    hits = []

    def rearm():
        hits.append(eng.now)
        eng.schedule(1, rearm)

    eng.schedule(1, rearm)
    with pytest.raises(SimulationError):
        eng.run(max_events=5)
    # The guard fires *at* the budget, not one event past it.
    assert len(hits) == 5
    assert eng.events_executed == 5


def test_max_events_exact_drain_returns_normally():
    eng = Engine()
    hits = []
    for i in range(5):
        eng.schedule(i + 1, lambda i=i: hits.append(i))
    eng.run(max_events=5)
    assert hits == list(range(5))


def test_max_events_respects_stop_on_last_event():
    eng = Engine()
    hits = []
    eng.schedule(1, lambda: (hits.append(1), eng.stop()))
    eng.schedule(2, lambda: hits.append(2))
    # stop() lands exactly on the budget boundary: no error.
    eng.run(max_events=1)
    assert hits == [1]


def test_global_event_counter_accumulates_across_engines():
    before = Engine.global_events_executed()
    for _ in range(3):
        eng = Engine()
        eng.schedule(1, lambda: None)
        eng.run()
    assert Engine.global_events_executed() == before + 3
