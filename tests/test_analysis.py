"""Tests for repro.analysis: the simulator-aware static-analysis pass.

Fixture-driven: every rule has at least one bad/good source pair run
through :func:`repro.analysis.lint_source` with a relpath that puts it in
the rule's scope.  Also covers suppression handling, the JSON report
schema, the CLI (exit codes, --rule, --json, --list-rules), and a
meta-test asserting the live tree under src/repro is lint-clean so CI
fails on new violations.
"""

import json
import textwrap

import pytest

import repro.__main__ as repro_main
from repro.analysis import (
    BARE_SUPPRESSION,
    LINT_SCHEMA,
    PARSE_ERROR,
    RULES,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import main as lint_cli
from repro.obs.recorder import TRACE_CATEGORIES


def findings_for(source, relpath="repro/sim/fake.py", rules=None):
    return lint_source(textwrap.dedent(source), relpath, rules=rules)


def active_rules(source, relpath="repro/sim/fake.py", rules=None):
    return sorted(
        f.rule for f in findings_for(source, relpath, rules) if not f.suppressed
    )


# One (bad, good) source pair per rule; the bad source must trigger
# exactly that rule, the good twin must be clean.
RULE_FIXTURES = {
    "no-wall-clock": (
        """
        import time

        def latency(engine):
            return time.perf_counter() - engine.start
        """,
        """
        def latency(engine):
            return engine.now - engine.start
        """,
    ),
    "seeded-rng-only": (
        """
        import random

        def jitter():
            return random.Random().random()
        """,
        """
        import random

        def jitter(seed):
            return random.Random(seed).random()
        """,
    ),
    "no-set-iteration-order": (
        """
        def drain(pending):
            ready = set(pending)
            for task in ready:
                task.run()
        """,
        """
        def drain(pending):
            ready = set(pending)
            for task in sorted(ready):
                task.run()
        """,
    ),
    "int-cycle-arithmetic": (
        """
        def halfway(start_cycles, end_cycles):
            return (start_cycles + end_cycles) / 2
        """,
        """
        def halfway(start_cycles, end_cycles):
            return (start_cycles + end_cycles) // 2
        """,
    ),
    "nonneg-schedule-delay": (
        """
        def kick(engine, due):
            engine.schedule(due - engine.now, lambda: None)
        """,
        """
        def kick(engine, due):
            engine.schedule(max(0, due - engine.now), lambda: None)
        """,
    ),
    "trace-category-registry": (
        """
        def emit(tracer, path, now):
            tracer.instant("dramm", "oops", path, now)
        """,
        """
        def emit(tracer, path, now):
            tracer.instant("dram", "ok", path, now)
        """,
    ),
    "telemetry-event-registry": (
        """
        def record(writer, job):
            writer.emit("job-exploded", job=job)
        """,
        """
        def record(writer, job):
            writer.emit("failed", job=job)
        """,
    ),
    "no-dict-mutation-in-iteration": (
        """
        def prune(table):
            for key, value in table.items():
                if value is None:
                    table.pop(key)
        """,
        """
        def prune(table):
            dead = [k for k, v in table.items() if v is None]
            for key in dead:
                table.pop(key)
        """,
    ),
    "no-mutable-default-arg": (
        """
        def enqueue(item, queue=[]):
            queue.append(item)
            return queue
        """,
        """
        def enqueue(item, queue=None):
            if queue is None:
                queue = []
            queue.append(item)
            return queue
        """,
    ),
    "no-id-order": (
        """
        def order(tasks):
            return sorted(tasks, key=lambda t: id(t))
        """,
        """
        def order(tasks):
            return sorted(tasks, key=lambda t: t.task_id)
        """,
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_bad_fixture_triggers_rule(self, rule_id):
        bad, _good = RULE_FIXTURES[rule_id]
        assert rule_id in active_rules(bad), f"{rule_id} missed its fixture"

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_good_fixture_is_clean(self, rule_id):
        _bad, good = RULE_FIXTURES[rule_id]
        assert active_rules(good) == []

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_rule_is_registered(self, rule_id):
        assert rule_id in RULES
        assert RULES[rule_id].summary

    def test_every_registered_rule_has_a_fixture(self):
        assert sorted(RULES) == sorted(RULE_FIXTURES)


class TestRuleDetails:
    def test_wall_clock_allowed_in_perf_and_main(self):
        bad, _ = RULE_FIXTURES["no-wall-clock"]
        for rel in ("repro/perf/harness.py", "repro/__main__.py",
                    "repro/obs/export.py"):
            assert active_rules(bad, relpath=rel) == []

    def test_wall_clock_catches_from_import(self):
        src = """
        from time import perf_counter

        def t():
            return perf_counter()
        """
        assert "no-wall-clock" in active_rules(src)

    def test_wall_clock_ignores_local_variable_named_time(self):
        src = """
        def pop(queue):
            time, seq, callback = queue[0]
            return time
        """
        assert active_rules(src) == []

    def test_unseeded_default_rng(self):
        src = """
        import numpy as np

        def noise():
            return np.random.default_rng().random()
        """
        assert "seeded-rng-only" in active_rules(src)

    def test_global_numpy_rng_banned_even_seeded(self):
        src = """
        import numpy as np

        def noise():
            np.random.seed(7)
            return np.random.random()
        """
        assert active_rules(src) == ["seeded-rng-only", "seeded-rng-only"]

    def test_set_iteration_outside_ordered_output_dirs_is_fine(self):
        # genomics/ and experiments/ joined the scope when index caching
        # and result collection started feeding deterministic outputs;
        # obs/ (read-side tooling) stays out.
        bad, _ = RULE_FIXTURES["no-set-iteration-order"]
        assert active_rules(bad, relpath="repro/obs/fake.py") == []

    def test_set_iteration_inside_genomics_fires(self):
        bad, _ = RULE_FIXTURES["no-set-iteration-order"]
        assert active_rules(bad, relpath="repro/genomics/fake.py") == [
            "no-set-iteration-order",
        ]

    def test_set_literal_and_union_iteration(self):
        src = """
        def go(a, b):
            for x in {1, 2, 3}:
                print(x)
            for y in set(a) | set(b):
                print(y)
        """
        assert active_rules(src) == [
            "no-set-iteration-order", "no-set-iteration-order",
        ]

    def test_sorted_set_is_fine_everywhere(self):
        src = """
        def go(a):
            items = sorted(set(a))
            return [x for x in sorted({1, 2})] + items
        """
        assert active_rules(src) == []

    def test_set_comprehension_from_set_is_fine(self):
        src = """
        def go(a):
            s = set(a)
            return {x + 1 for x in s}
        """
        assert active_rules(src) == []

    def test_next_iter_on_set_flagged(self):
        src = """
        def one(batch):
            kinds = {m.kind for m in batch}
            return next(iter(kinds))
        """
        assert "no-set-iteration-order" in active_rules(src)

    def test_cycle_division_only_on_cycle_names(self):
        src = """
        def ratio(hits, misses):
            return hits / (hits + misses)
        """
        assert active_rules(src) == []

    def test_float_on_cycles_flagged(self):
        src = """
        def to_ns(total_cycles, tck):
            return float(total_cycles) * tck
        """
        assert "int-cycle-arithmetic" in active_rules(src)

    def test_negative_literal_delay(self):
        src = """
        def rewind(engine):
            engine.schedule(-1, lambda: None)
        """
        assert "nonneg-schedule-delay" in active_rules(src)

    def test_trace_category_must_be_literal(self):
        src = """
        def emit(tracer, cat, path, now):
            tracer.instant(cat, "x", path, now)
        """
        assert "trace-category-registry" in active_rules(src)

    def test_known_categories_accepted(self):
        for cat in TRACE_CATEGORIES:
            src = f"""
            def emit(tracer, path, now):
                tracer.complete({cat!r}, "x", path, now, 1)
            """
            assert active_rules(src) == [], cat

    def test_non_recorder_receivers_ignored(self):
        src = """
        def finish(request, engine):
            request.complete(engine.now)
        """
        assert active_rules(src) == []

    def test_del_during_iteration_flagged(self):
        src = """
        def prune(table):
            for key in table:
                del table[key]
        """
        assert "no-dict-mutation-in-iteration" in active_rules(src)

    def test_parse_error_reported(self):
        findings = findings_for("def broken(:\n    pass\n")
        assert [f.rule for f in findings] == [PARSE_ERROR]


class TestSuppressions:
    BAD_WITH_SUPPRESSION = """
    def halfway(start_cycles, end_cycles):
        # repro: allow[int-cycle-arithmetic] -- derived reporting metric only.
        return (start_cycles + end_cycles) / 2
    """

    def test_line_suppression_applies(self):
        findings = findings_for(self.BAD_WITH_SUPPRESSION)
        assert [f.rule for f in findings] == ["int-cycle-arithmetic"]
        assert findings[0].suppressed
        assert "derived reporting metric" in findings[0].reason

    def test_same_line_suppression(self):
        src = """
        def halfway(a_cycles, b_cycles):
            return (a_cycles + b_cycles) / 2  # repro: allow[int-cycle-arithmetic] -- reporting only.
        """
        findings = findings_for(src)
        assert all(f.suppressed for f in findings)

    def test_multiline_comment_block_suppression(self):
        src = """
        def halfway(a_cycles, b_cycles):
            # repro: allow[int-cycle-arithmetic] -- reporting-only metric,
            # never fed back into event scheduling.
            return (a_cycles + b_cycles) / 2
        """
        findings = findings_for(src)
        assert all(f.suppressed for f in findings)

    def test_file_level_suppression(self):
        src = """
        # repro: allow-file[int-cycle-arithmetic] -- this whole module is reporting.

        def halfway(a_cycles, b_cycles):
            return (a_cycles + b_cycles) / 2

        def quarter(a_cycles):
            return a_cycles / 4
        """
        findings = findings_for(src)
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)

    def test_suppression_only_covers_named_rule(self):
        src = """
        def kick(engine, due_cycles):
            # repro: allow[nonneg-schedule-delay] -- guarded by the caller.
            engine.schedule(due_cycles - engine.now, lambda: None)
        """
        findings = findings_for(src)
        by_rule = {f.rule: f for f in findings}
        assert by_rule["nonneg-schedule-delay"].suppressed

    def test_bare_suppression_is_reported(self):
        src = """
        def halfway(a_cycles, b_cycles):
            # repro: allow[int-cycle-arithmetic]
            return (a_cycles + b_cycles) / 2
        """
        rules = active_rules(src)
        assert BARE_SUPPRESSION in rules

    def test_unknown_rule_in_suppression_reported(self):
        src = """
        X = 1  # repro: allow[no-such-rule] -- some long explanation here.
        """
        assert BARE_SUPPRESSION in active_rules(src)

    def test_rule_filter_skips_hygiene(self):
        src = """
        def halfway(a_cycles, b_cycles):
            # repro: allow[int-cycle-arithmetic]
            return (a_cycles + b_cycles) / 2
        """
        rules = active_rules(src, rules=["no-wall-clock"])
        assert rules == []


class TestReportAndApi:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", "repro/x.py", rules=["nope"])

    def test_report_schema(self, tmp_path):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nNOW = time.time()\n")
        report = lint_paths([tmp_path])
        payload = report.to_dict()
        assert payload["schema"] == LINT_SCHEMA
        assert payload["files_scanned"] == 1
        assert len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "no-wall-clock"
        assert finding["line"] == 2
        assert "path" in finding and "col" in finding and "message" in finding
        assert payload["rules"]["no-wall-clock"]["active"] == 1
        assert payload["suppressed"] == []
        assert not report.ok

    def test_report_deterministic_ordering(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text(
                "import time\nX = time.time()\nY = time.time()\n"
            )
        report = lint_paths([tmp_path])
        locations = [(f.path, f.line) for f in report.findings]
        assert locations == sorted(locations)


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_cli([]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_violation_names_rule_file_and_line(self, tmp_path, capsys):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\nRNG = random.Random()\n")
        assert lint_cli([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "seeded-rng-only" in out
        assert "bad.py:2:" in out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        out_file = tmp_path / "lint.json"
        assert lint_cli([str(bad), "--json", str(out_file)]) == 1
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == LINT_SCHEMA
        assert payload["findings"][0]["rule"] == "no-mutable-default-arg"

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert lint_cli([str(bad), "--rule", "no-wall-clock"]) == 0
        assert lint_cli([str(bad), "--rule", "no-mutable-default-arg"]) == 1

    def test_unknown_rule_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            lint_cli(["--rule", "bogus"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert lint_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_main_module_dispatches_lint(self, capsys):
        assert repro_main.main(["lint", "--list-rules"]) == 0
        assert "no-wall-clock" in capsys.readouterr().out

    def test_acceptance_seeded_violation(self, tmp_path, capsys):
        """The ISSUE acceptance check: an unseeded random.Random() in a
        sim/ path exits non-zero and names the rule, file, and line."""
        bad = tmp_path / "sim" / "planted.py"
        bad.parent.mkdir()
        bad.write_text("import random\n\n\nR = random.Random()\n")
        assert lint_cli([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "seeded-rng-only" in out
        assert "planted.py:4:" in out

    def test_nonexistent_path_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            lint_cli(["/no/such/path"])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err


class TestLiveTreeIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        """CI gate: the shipped tree must stay lint-clean."""
        report = lint_paths()
        assert report.files_scanned > 50
        offenders = [
            f"{f.location}: {f.rule}: {f.message}" for f in report.active
        ]
        assert not offenders, "\n".join(offenders)

    def test_every_live_suppression_has_a_reason(self):
        report = lint_paths()
        for finding in report.suppressed:
            assert finding.reason, finding.location

    def test_known_deliberate_suppressions_present(self):
        """The audited deliberate patterns stay suppressed (not deleted)."""
        report = lint_paths()
        suppressed = {(f.path, f.rule) for f in report.suppressed}
        assert ("repro/sim/queueing.py", "no-id-order") in suppressed
        assert ("repro/sim/scheduler.py", "int-cycle-arithmetic") in suppressed
        assert ("repro/cxl/link.py", "int-cycle-arithmetic") in suppressed
