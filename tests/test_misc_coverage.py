"""Small-surface tests that pin down edge cases across modules."""

import pytest

from repro.cxl import CommParams, IDEAL_LINK_PARAMS, LinkParams
from repro.cxl.flit import (
    FLIT_BYTES,
    Message,
    MessageKind,
    PACKED_HEADER_BYTES,
    REQUEST_HEADER_BYTES,
)
from repro.dram.request import AccessKind, DataClass, DramCoord, MemoryRequest
from repro.memmgmt.regions import Region, StripedLayout


class TestCommParams:
    def test_resolve_passthrough_and_ideal(self):
        comm = CommParams()
        assert comm.resolve(comm.cxl_link) is comm.cxl_link
        ideal = comm.idealized()
        assert ideal.resolve(comm.cxl_link) is IDEAL_LINK_PARAMS
        assert ideal.dimm_local_latency == 0

    def test_flags_default_off(self):
        comm = CommParams()
        assert not comm.data_packing and not comm.device_bias


class TestMessageHeaders:
    def test_request_header_larger_than_packed(self):
        assert REQUEST_HEADER_BYTES > PACKED_HEADER_BYTES

    def test_kind_specific_header(self):
        req = Message(MessageKind.MEM_REQUEST, 8, "d")
        resp = Message(MessageKind.MEM_RESPONSE, 8, "d")
        ctrl = Message(MessageKind.CONTROL, 8, "d")
        assert req.header_bytes == REQUEST_HEADER_BYTES
        assert resp.header_bytes == PACKED_HEADER_BYTES
        assert ctrl.header_bytes == PACKED_HEADER_BYTES

    def test_exact_flit_boundary(self):
        m = Message(MessageKind.MEM_RESPONSE, FLIT_BYTES - PACKED_HEADER_BYTES, "d")
        assert m.unpacked_wire_bytes == FLIT_BYTES
        m2 = Message(MessageKind.MEM_RESPONSE,
                     FLIT_BYTES - PACKED_HEADER_BYTES + 1, "d")
        assert m2.unpacked_wire_bytes == 2 * FLIT_BYTES

    def test_message_ids_unique(self):
        a = Message(MessageKind.TASK, 8, "d")
        b = Message(MessageKind.TASK, 8, "d")
        assert a.msg_id != b.msg_id

    def test_deliver_without_callback_is_noop(self):
        Message(MessageKind.TASK, 8, "d").deliver()


class TestMemoryRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryRequest(addr=-1, size=8)
        with pytest.raises(ValueError):
            MemoryRequest(addr=0, size=0)

    def test_latency_needs_both_ends(self):
        req = MemoryRequest(addr=0, size=8)
        assert req.latency is None
        req.issued_at = 10
        assert req.latency is None
        req.complete(now=25)
        assert req.latency == 15

    def test_complete_invokes_callback_once(self):
        hits = []
        req = MemoryRequest(addr=0, size=8, on_complete=hits.append)
        req.complete(now=5)
        assert hits == [req]

    def test_is_write(self):
        assert MemoryRequest(addr=0, size=1, kind=AccessKind.WRITE).is_write
        assert not MemoryRequest(addr=0, size=1,
                                 kind=AccessKind.ATOMIC_RMW).is_write


class TestDramCoord:
    def test_first_chip(self):
        coord = DramCoord(rank=0, bank=0, row=0, column=0, chip_group=3,
                          chips_per_group=4)
        assert coord.first_chip == 12

    def test_bank_key_hashable(self):
        coord = DramCoord(rank=1, bank=2, row=3, column=4, chip_group=0)
        assert hash(coord) == hash(coord)


class TestDataClass:
    def test_spatial_locality_partition(self):
        assert DataClass.HASH_LOCATIONS.spatially_local
        assert DataClass.REFERENCE_WINDOW.spatially_local
        assert not DataClass.FM_INDEX_BLOCK.spatially_local
        assert not DataClass.BLOOM_COUNTER.spatially_local

    def test_fine_grained_partition(self):
        assert DataClass.FM_INDEX_BLOCK.fine_grained
        assert DataClass.BLOOM_COUNTER.fine_grained
        assert not DataClass.REFERENCE_WINDOW.fine_grained


class TestRegion:
    def test_contains_and_end(self):
        region = Region(name="r", base=100, size=50,
                        data_class=DataClass.GENERIC,
                        layout=StripedLayout([0]), mappings={})
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)
        assert not region.contains(99)
        assert region.end() == 150


class TestLinkParamsValidation:
    def test_ideal_skips_bandwidth_check(self):
        LinkParams(bytes_per_cycle=0, latency_cycles=0, ideal=True)

    def test_real_links_validated(self):
        with pytest.raises(ValueError):
            LinkParams(bytes_per_cycle=-1, latency_cycles=0)
