"""Documentation-quality gates: every public module, class, and function
in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


def test_package_tree_is_nontrivial():
    assert len(ALL_MODULES) > 40


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", ALL_MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != name:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{attr_name} lacks a docstring"
            )


def test_top_level_exports_resolve():
    from repro import core, cxl, dram, genomics, memmgmt, sim  # noqa: F401

    from repro.core import BeaconD, BeaconS, Report  # noqa: F401
    from repro.experiments import ExperimentScale  # noqa: F401


def _modules_named_in_api_doc():
    import pathlib
    import re

    doc = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    names = set(re.findall(r"`(repro(?:\.\w+)+)`", doc.read_text()))
    assert names, "docs/API.md names no repro.* modules?"
    return sorted(names)


@pytest.mark.parametrize("name", _modules_named_in_api_doc())
def test_api_doc_modules_import(name):
    """Every dotted `repro.*` path written in docs/API.md must import
    (as a module, or as an attribute of its parent module)."""
    try:
        importlib.import_module(name)
    except ImportError:
        parent, _, attr = name.rpartition(".")
        module = importlib.import_module(parent)
        assert hasattr(module, attr), f"docs/API.md names missing {name}"
