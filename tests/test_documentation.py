"""Documentation-quality gates: every public module, class, and function
in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


def test_package_tree_is_nontrivial():
    assert len(ALL_MODULES) > 40


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", ALL_MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != name:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{attr_name} lacks a docstring"
            )


def test_top_level_exports_resolve():
    from repro import core, cxl, dram, genomics, memmgmt, sim  # noqa: F401

    from repro.core import BeaconD, BeaconS, Report  # noqa: F401
    from repro.experiments import ExperimentScale  # noqa: F401
