"""Tests for the address mapping schemes (Fig. 10): bijectivity + geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.mapping import (
    ChipInterleaveMapping,
    RankInterleaveMapping,
    RowLocalityMapping,
)
from repro.dram.timing import DimmGeometry

GEO = DimmGeometry()

MAPPINGS = [
    lambda: RankInterleaveMapping(GEO),
    lambda: ChipInterleaveMapping(GEO, chips_per_group=1, unit_bytes=32),
    lambda: ChipInterleaveMapping(GEO, chips_per_group=8, unit_bytes=32),
    lambda: ChipInterleaveMapping(GEO, chips_per_group=16),
    lambda: RowLocalityMapping(GEO),
    lambda: RowLocalityMapping(GEO, chips_per_group=4),
]


@pytest.mark.parametrize("factory", MAPPINGS)
def test_injective_over_dense_range(factory):
    mapping = factory()
    seen = set()
    for addr in range(0, 1 << 16, 1):
        c = mapping.map(addr)
        key = (c.rank, c.bank, c.row, c.column, c.chip_group)
        assert key not in seen, f"collision at {addr:#x}"
        seen.add(key)


@pytest.mark.parametrize("factory", MAPPINGS)
def test_coordinates_in_bounds(factory):
    mapping = factory()
    for addr in range(0, 1 << 18, 4097):
        c = mapping.map(addr)
        assert 0 <= c.rank < GEO.ranks
        assert 0 <= c.bank < GEO.banks
        assert 0 <= c.column < GEO.row_bytes_per_chip * c.chips_per_group
        assert 0 <= c.chip_group < GEO.chips_per_rank // c.chips_per_group
        assert c.first_chip + c.chips_per_group <= GEO.chips_per_rank


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=1 << 30))
def test_rank_interleave_line_locality(addr):
    """Bytes of one 64 B line stay in one (rank, bank, row) under lockstep."""
    mapping = RankInterleaveMapping(GEO)
    base = (addr // 64) * 64
    coords = [mapping.map(base + o) for o in (0, 31, 63)]
    assert len({(c.rank, c.bank, c.row) for c in coords}) == 1
    assert coords[2].column - coords[0].column == 63


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=1 << 30))
def test_chip_interleave_unit_stays_in_group(addr):
    """A fine-grained element never spans chip groups (the unit contract)."""
    mapping = ChipInterleaveMapping(GEO, chips_per_group=1, unit_bytes=32)
    base = (addr // 32) * 32
    coords = [mapping.map(base + o) for o in (0, 15, 31)]
    assert len({(c.rank, c.chip_group, c.bank, c.row) for c in coords}) == 1


def test_chip_interleave_spreads_consecutive_units():
    mapping = ChipInterleaveMapping(GEO, chips_per_group=1, unit_bytes=32)
    groups = [mapping.map(i * 32).chip_group for i in range(16)]
    assert sorted(groups) == list(range(16))


def test_row_locality_keeps_runs_in_one_row():
    mapping = RowLocalityMapping(GEO)
    row_bytes = GEO.row_bytes_per_rank
    coords = [mapping.map(a) for a in range(0, row_bytes, 997)]
    assert len({(c.rank, c.bank, c.row, c.chip_group) for c in coords}) == 1
    nxt = mapping.map(row_bytes)
    first = coords[0]
    assert (nxt.rank, nxt.bank, nxt.row, nxt.chip_group) != (
        first.rank, first.bank, first.row, first.chip_group)


def test_row_base_offsets_rows():
    plain = RankInterleaveMapping(GEO)
    shifted = RankInterleaveMapping(GEO, row_base=100)
    a, b = plain.map(12345), shifted.map(12345)
    assert b.row == a.row + 100
    assert (b.rank, b.bank, b.column) == (a.rank, a.bank, a.column)


def test_rows_used_monotonic_and_positive():
    for factory in MAPPINGS:
        mapping = factory()
        r1 = mapping.rows_used(1)
        r2 = mapping.rows_used(1 << 24)
        assert r1 >= 1
        assert r2 >= r1


def test_validation():
    with pytest.raises(ValueError):
        ChipInterleaveMapping(GEO, chips_per_group=3)  # must divide 16
    with pytest.raises(ValueError):
        ChipInterleaveMapping(GEO, chips_per_group=1, unit_bytes=7)
    with pytest.raises(ValueError):
        RankInterleaveMapping(GEO, row_base=-1)
    with pytest.raises(ValueError):
        RankInterleaveMapping(GEO).map(-1)


def test_geometry_helpers():
    assert GEO.banks == 16
    assert GEO.row_bytes_per_rank == 16384
    assert GEO.burst_bytes_per_rank == 64
    assert GEO.chip_groups(4) == 4
    with pytest.raises(ValueError):
        GEO.chip_groups(5)
    assert GEO.rows_per_bank(1 << 30) >= 1
