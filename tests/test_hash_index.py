"""Tests for the hash-index seeding substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.hash_index import (
    BUCKET_HEADER_BYTES,
    LOCATION_BYTES,
    HashIndex,
)
from repro.genomics.sequence import random_genome


def make_index(length=3000, k=11, stride=1, seed=1, bucket_load=4):
    genome = random_genome(length, seed=seed)
    positions = length - k + 1
    return genome, HashIndex(genome, k=k, stride=stride,
                             num_buckets=max(64, positions // bucket_load))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashIndex("ACGT", k=0)
        with pytest.raises(ValueError):
            HashIndex("ACGT", k=2, stride=0)
        with pytest.raises(ValueError):
            HashIndex("AC", k=5)

    def test_layout_sizes(self):
        genome, index = make_index()
        assert index.directory_bytes == index.num_buckets * BUCKET_HEADER_BYTES
        sampled = len(range(0, len(genome) - index.k + 1, index.stride))
        assert index.locations_bytes == sampled * LOCATION_BYTES
        assert index.size_bytes == index.directory_bytes + index.locations_bytes


class TestLookup:
    def test_every_sampled_position_findable(self):
        genome, index = make_index(length=800)
        for pos in range(0, len(genome) - index.k + 1, 13):
            kmer = genome[pos : pos + index.k]
            assert pos in index.lookup(kmer)

    def test_lookup_length_validation(self):
        _genome, index = make_index()
        with pytest.raises(ValueError):
            index.lookup("ACG")

    def test_bucket_collisions_are_supersets_not_losses(self):
        # Bucketed tables may return spurious candidates but never drop the
        # true position (SMALT-style compact table semantics).
        genome, index = make_index(length=500, bucket_load=16)
        for pos in (0, 100, 250):
            kmer = genome[pos : pos + index.k]
            assert pos in index.lookup(kmer)


class TestTrace:
    def test_trace_matches_lookup(self):
        genome, index = make_index()
        kmer = genome[50 : 50 + index.k]
        trace = index.lookup_trace(kmer)
        assert list(trace.locations) == index.lookup(kmer)
        assert len(trace.location_addrs) == len(trace.locations)

    def test_trace_addresses_in_bounds_and_contiguous(self):
        genome, index = make_index()
        kmer = genome[123 : 123 + index.k]
        trace = index.lookup_trace(kmer)
        assert trace.header_addr == trace.bucket * BUCKET_HEADER_BYTES
        assert trace.header_addr < index.directory_bytes
        for i, addr in enumerate(trace.location_addrs):
            assert index.directory_bytes <= addr < index.size_bytes
            if i:
                assert addr == trace.location_addrs[i - 1] + LOCATION_BYTES

    def test_seed_read_covers_read(self):
        genome, index = make_index()
        read = genome[200:300]
        queries = list(index.seed_read(read))
        expected = len(range(0, len(read) - index.k + 1, index.k))
        assert len(queries) == expected

    def test_seed_read_custom_stride(self):
        genome, index = make_index()
        read = genome[0:100]
        dense = list(index.seed_read(read, seed_stride=1))
        assert len(dense) == len(read) - index.k + 1


@settings(max_examples=15)
@given(st.integers(min_value=0, max_value=400))
def test_random_position_property(pos):
    genome, index = make_index(length=600, seed=9)
    pos = min(pos, len(genome) - index.k)
    kmer = genome[pos : pos + index.k]
    assert pos in index.lookup(kmer)
