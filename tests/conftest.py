"""Test-suite configuration.

Hypothesis runs with a generous deadline (the event-driven simulations
inside some properties are CPU-heavy, and wall-clock varies with machine
load) and deterministic derandomization so CI failures reproduce locally.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
