"""Integration tests: NDP module execution, atomic engines, task migration."""

import pytest

from repro.core import Algorithm, BeaconConfig, ComputeStep, MemStep, Task
from repro.core.atomic_engine import AtomicEngineBank
from repro.core.beacon import BeaconD, BeaconS
from repro.core.ndp_module import NdpModule
from repro.core.task import AccessSpec
from repro.cxl import CommParams
from repro.cxl.topology import MemoryPool
from repro.dram import DimmKind, MemoryRequest, RankInterleaveMapping
from repro.dram.request import AccessKind, DataClass
from repro.dram.timing import DimmGeometry
from repro.memmgmt.regions import Region, RegionMap, StripedLayout
from repro.sim import Engine
from repro.sim.component import Component

GEO = DimmGeometry()


def tiny_pool(num_dimms=2, comm=None):
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root,
                      comm or CommParams(device_bias=True))
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    for j in range(num_dimms):
        pool.add_dimm(f"d0.{j}", "sw0", DimmKind.CXLG)
    region_map = RegionMap()
    region_map.add(Region(
        name="mem", base=0, size=1 << 20, data_class=DataClass.GENERIC,
        layout=StripedLayout(list(range(num_dimms)), stripe_bytes=64),
        mappings={j: RankInterleaveMapping(GEO) for j in range(num_dimms)},
    ))
    return engine, root, pool, region_map


def simple_task(addresses, compute=4, algorithm=Algorithm.FM_SEEDING,
                trace=None):
    def gen():
        for addr in addresses:
            yield ComputeStep(compute)
            yield MemStep([AccessSpec(addr=addr, size=32)])
            if trace is not None:
                trace.append(addr)

    return Task(algorithm=algorithm, steps=gen())


class TestNdpModule:
    def test_task_runs_to_completion(self):
        engine, root, pool, rmap = tiny_pool()
        module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=2,
                           pool=pool, region_map=rmap)
        done = []
        task = simple_task([0, 64, 128])
        task.on_done = done.append
        module.submit_task(task)
        engine.run()
        assert done == [task]
        assert module.tasks_completed == 1
        assert module.stats.get("mem_requests") == 3
        assert task.finished_at > task.started_at

    def test_pe_task_switching_overlaps_tasks(self):
        """With 1 PE and 2 tasks, memory waits overlap: total runtime is far
        below the serial sum (the paper's task-switching behaviour)."""
        def run(num_tasks):
            engine, root, pool, rmap = tiny_pool()
            module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=1,
                               pool=pool, region_map=rmap)
            for t in range(num_tasks):
                module.submit_task(simple_task([64 * i for i in range(20)]))
            engine.run()
            assert module.tasks_completed == num_tasks
            return engine.now

        one = run(1)
        two = run(2)
        assert two < 2 * one * 0.8

    def test_local_requests_counted(self):
        engine, root, pool, rmap = tiny_pool()
        module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=1,
                           pool=pool, region_map=rmap)
        module.submit_task(simple_task([0, 64]))  # stripe: d0.0 then d0.1
        engine.run()
        assert module.stats.get("local_requests") == 1

    def test_empty_mem_step_continues(self):
        engine, root, pool, rmap = tiny_pool()
        module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=1,
                           pool=pool, region_map=rmap)

        def gen():
            yield MemStep([])
            yield ComputeStep(2)

        task = Task(algorithm=Algorithm.FM_SEEDING, steps=gen())
        module.submit_task(task)
        engine.run()
        assert module.tasks_completed == 1


class TestTaskMigration:
    def test_task_migrates_to_data(self):
        engine, root, pool, rmap = tiny_pool()
        a = NdpModule(engine, "ndp0", root, node="d0.0", num_pes=1,
                      pool=pool, region_map=rmap)
        b = NdpModule(engine, "ndp1", root, node="d0.1", num_pes=1,
                      pool=pool, region_map=rmap)
        peers = {"d0.0": a, "d0.1": b}
        a.migration_peers = peers
        b.migration_peers = peers
        # Addresses alternate DIMMs -> the task ping-pongs between modules.
        task = simple_task([0, 64, 128, 192])
        a.submit_task(task)
        engine.run()
        assert a.tasks_completed + b.tasks_completed == 1
        assert a.stats.get("task_migrations", 0) >= 1
        assert b.stats.get("tasks_received", 0) >= 1
        # Every access was DIMM-local after migration.
        total_local = a.stats.get("local_requests") + b.stats.get("local_requests")
        assert total_local == 4

    def test_no_migration_without_peers(self):
        engine, root, pool, rmap = tiny_pool()
        a = NdpModule(engine, "ndp0", root, node="d0.0", num_pes=1,
                      pool=pool, region_map=rmap)
        a.submit_task(simple_task([64]))
        engine.run()
        assert a.stats.get("task_migrations", 0) == 0
        assert a.tasks_completed == 1


class TestAtomicEngineBank:
    def _bank(self, engines=2, pool_dimms=1):
        engine, root, pool, rmap = tiny_pool(num_dimms=pool_dimms)
        bank = AtomicEngineBank(engine, "atomics", root, node="sw0",
                                num_engines=engines, compute_cycles=4)
        return engine, pool, bank

    def _rmw(self, addr=0):
        req = MemoryRequest(addr=addr, size=1, kind=AccessKind.ATOMIC_RMW)
        req.coord = RankInterleaveMapping(GEO).map(addr)
        req.dimm_index = 0
        return req

    def test_rmw_issues_read_then_write(self):
        engine, pool, bank = self._bank()
        done = []
        bank.perform(pool, self._rmw(), done.append)
        engine.run()
        assert len(done) == 1
        assert pool.controllers[0].stats.get("issued") == 2

    def test_rejects_non_atomic(self):
        engine, pool, bank = self._bank()
        req = MemoryRequest(addr=0, size=1, kind=AccessKind.READ)
        with pytest.raises(ValueError):
            bank.perform(pool, req, lambda r: None)

    def test_backlog_drains_under_engine_pressure(self):
        engine, pool, bank = self._bank(engines=1)
        done = []
        for i in range(20):
            bank.perform(pool, self._rmw(addr=i * 64), done.append)
        engine.run()
        assert len(done) == 20
        assert bank.busy == 0
        assert bank.stats.get("rmw_ops") == 20

    def test_validation(self):
        engine, root, pool, _ = tiny_pool()
        with pytest.raises(ValueError):
            AtomicEngineBank(engine, "a", root, "sw0", num_engines=0)
        with pytest.raises(ValueError):
            AtomicEngineBank(engine, "a2", root, "sw0", num_engines=1,
                             compute_cycles=-1)


class TestSystemConstruction:
    def test_beacon_d_topology(self):
        system = BeaconD(config=BeaconConfig().scaled(16))
        assert len(system.pool.dimms) == 8
        cxlg = [d for d in system.pool.dimms if d.kind is DimmKind.CXLG]
        assert len(cxlg) == 2
        assert len(system.ndp_modules) == 2
        assert all(m.node.startswith("d") for m in system.ndp_modules)

    def test_beacon_s_topology(self):
        system = BeaconS(config=BeaconConfig().scaled(16))
        assert all(d.kind is DimmKind.UNMODIFIED_CXL for d in system.pool.dimms)
        assert len(system.ndp_modules) == 2
        assert all(m.node.startswith("sw") for m in system.ndp_modules)

    def test_single_shot_guard(self):
        from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload

        system = BeaconD(config=BeaconConfig().scaled(16))
        w = make_seeding_workload(SEEDING_DATASETS[0], scale=0.02)
        system.run_fm_seeding(w)
        with pytest.raises(RuntimeError, match="single-shot"):
            system.run_fm_seeding(w)

    def test_dedication_happened(self):
        system = BeaconD(config=BeaconConfig().scaled(16))
        assert all(
            system.allocator.dimm(d).dedicated_to == system.label
            for d in system.allocator.all_dimms()
        )
        assert system.framework.stats.get("migrated_bytes") > 0
