"""Failure-injection tests: the stack must fail loudly, not wedge."""

import pytest

from repro.core import Algorithm, BeaconConfig, BeaconD, ComputeStep, MemStep, Task
from repro.core.ndp_module import NdpModule
from repro.core.task import AccessSpec
from repro.cxl import CommParams
from repro.cxl.topology import MemoryPool
from repro.dram import DimmKind
from repro.dram.request import AccessKind
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload
from repro.memmgmt.regions import RegionMap
from repro.sim import Engine, SimulationError
from repro.sim.component import Component

CFG = BeaconConfig().scaled(16)


def test_unmapped_address_raises_at_translation():
    """A task touching an address outside every region must raise a
    KeyError from the Address Translator, not silently drop the access."""
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, CommParams(device_bias=True))
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    pool.add_dimm("d0.0", "sw0", DimmKind.CXLG)
    module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=1,
                       pool=pool, region_map=RegionMap())

    def gen():
        yield MemStep([AccessSpec(addr=0xDEAD, size=8)])

    module.submit_task(Task(algorithm=Algorithm.FM_SEEDING, steps=gen()))
    with pytest.raises(KeyError):
        engine.run()


def test_deadlocked_simulation_is_detected():
    """If tasks never finish (operand lost), the runner reports a deadlock
    instead of returning a bogus report."""
    system = BeaconD(config=CFG)
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.02)

    # Sabotage: swallow every memory access so operands never return.
    system.pool.access = lambda request, src_node: None

    with pytest.raises(SimulationError, match="deadlock"):
        system.run_fm_seeding(workload)


def test_task_generator_exception_propagates():
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, CommParams())
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    pool.add_dimm("d0.0", "sw0", DimmKind.CXLG)
    module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=1,
                       pool=pool, region_map=RegionMap())

    def gen():
        yield ComputeStep(4)
        raise RuntimeError("algorithm bug")

    module.submit_task(Task(algorithm=Algorithm.FM_SEEDING, steps=gen()))
    with pytest.raises(RuntimeError, match="algorithm bug"):
        engine.run()


def test_bad_step_type_rejected():
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, CommParams())
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    pool.add_dimm("d0.0", "sw0", DimmKind.CXLG)
    module = NdpModule(engine, "ndp", root, node="d0.0", num_pes=1,
                       pool=pool, region_map=RegionMap())

    def gen():
        yield "not a step"

    module.submit_task(Task(algorithm=Algorithm.FM_SEEDING, steps=gen()))
    with pytest.raises(TypeError, match="unknown step"):
        engine.run()


def test_allocation_failure_surfaces_in_runner():
    """A pool too small for the index fails the framework allocation and
    the runner reports it as a RuntimeError."""
    from dataclasses import replace

    from repro.dram.timing import DimmGeometry

    # One-row DIMMs: nothing fits.
    tiny = replace(CFG, geometry=DimmGeometry())
    system = BeaconD(config=tiny)
    for state in (system.allocator.dimm(d) for d in system.allocator.all_dimms()):
        state.total_rows = 0
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.02)
    with pytest.raises(RuntimeError, match="allocation failed"):
        system.run_fm_seeding(workload)


def test_route_to_unknown_node_fails():
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, CommParams())
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    with pytest.raises(KeyError):
        pool.fabric.route("sw0", "ghost")


def test_fabric_requires_host_first():
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, CommParams())
    with pytest.raises(RuntimeError, match="add_host"):
        pool.fabric.add_switch("sw0")
    with pytest.raises(ValueError, match="unknown parent"):
        pool.fabric.add_dimm_node("d0", "sw0")


def test_atomic_without_engine_fails_loudly():
    engine = Engine()
    root = Component(engine, "sys")
    pool = MemoryPool(engine, "pool", root, CommParams(device_bias=True))
    pool.fabric.add_host()
    pool.fabric.add_switch("sw0")
    pool.add_dimm("d0.0", "sw0", DimmKind.CXLG)
    pool.add_dimm("d0.1", "sw0", DimmKind.UNMODIFIED_CXL)
    from repro.dram import ChipInterleaveMapping, DimmGeometry, MemoryRequest

    req = MemoryRequest(addr=0, size=1, kind=AccessKind.ATOMIC_RMW)
    req.coord = ChipInterleaveMapping(DimmGeometry(), 16).map(0)
    req.dimm_index = 1
    with pytest.raises(RuntimeError, match="no atomic engine"):
        pool.access(req, "d0.0")
