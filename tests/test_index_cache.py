"""Tests for the cross-run index cache (repro.genomics.index_cache)."""

import numpy as np
import pytest

from repro.baselines.cpu import CpuModel
from repro.genomics.fm_index import FMIndex
from repro.genomics.index_cache import (
    DISABLE_ENV,
    IndexCache,
    fresh_bloom_filter,
    get_cache,
)
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload


@pytest.fixture()
def cache():
    return IndexCache(max_entries=4)


REFERENCE = "ACGTACGTTACGGATTACA" * 8


class TestMemoization:
    def test_hit_returns_identical_object(self, cache):
        first = cache.fm_index(REFERENCE)
        second = cache.fm_index(REFERENCE)
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_references_do_not_collide(self, cache):
        assert cache.fm_index(REFERENCE) is not cache.fm_index(REFERENCE[:-4])
        assert cache.stats.misses == 2

    def test_hash_index_keyed_by_parameters(self, cache):
        a = cache.hash_index(REFERENCE, k=13, stride=1, num_buckets=64)
        b = cache.hash_index(REFERENCE, k=13, stride=1, num_buckets=64)
        c = cache.hash_index(REFERENCE, k=11, stride=1, num_buckets=64)
        assert a is b
        assert a is not c

    def test_lru_eviction_is_bounded_and_recency_ordered(self, cache):
        for i in range(6):
            cache.memo(("k", i), lambda i=i: i)
        assert len(cache) == 4
        assert cache.stats.evictions == 2
        # (k, 0) and (k, 1) were evicted; (k, 5) is resident.
        cache.memo(("k", 5), lambda: "rebuilt")
        assert cache.stats.hits == 1
        assert cache.memo(("k", 0), lambda: "rebuilt") == "rebuilt"

    def test_clear_drops_entries(self, cache):
        cache.fm_index(REFERENCE)
        cache.clear()
        assert len(cache) == 0
        cache.fm_index(REFERENCE)
        assert cache.stats.misses == 2


class TestDisableSwitch:
    def test_env_bypasses_reads_and_writes(self, cache, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        first = cache.fm_index(REFERENCE)
        second = cache.fm_index(REFERENCE)
        assert first is not second
        assert len(cache) == 0
        assert cache.stats.bypasses == 2
        assert cache.stats.hits == cache.stats.misses == 0

    def test_disable_checked_per_lookup(self, cache, monkeypatch):
        # Flipping the switch mid-process must take effect immediately —
        # the bench harness relies on this for its reference run.
        cached = cache.fm_index(REFERENCE)
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert cache.fm_index(REFERENCE) is not cached
        monkeypatch.delenv(DISABLE_ENV)
        assert cache.fm_index(REFERENCE) is cached

    def test_cached_and_uncached_indexes_are_equivalent(self, cache):
        cached = cache.fm_index(REFERENCE)
        rebuilt = FMIndex(REFERENCE)
        read = REFERENCE[8:24]
        assert [
            (a.symbol, a.blocks) for a in cached.search_trace(read)
        ] == [
            (a.symbol, a.blocks) for a in rebuilt.search_trace(read)
        ]


class TestSafetyContracts:
    def test_hot_profile_is_frozen(self, cache):
        fm = cache.fm_index(REFERENCE)
        profile = cache.fm_hot_profile(
            fm, ["ACGT"], lambda: np.ones(4, dtype=np.int64)
        )
        with pytest.raises(ValueError):
            profile[0] = 99

    def test_bloom_filters_are_never_shared(self):
        a = fresh_bloom_filter(1 << 10)
        b = fresh_bloom_filter(1 << 10)
        assert a is not b
        a.insert("ACGTACGTACGTACG")
        assert b.count("ACGTACGTACGTACG") == 0

    def test_cpu_baseline_identical_with_and_without_cache(self, monkeypatch):
        workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.02)
        get_cache().clear()
        cached = CpuModel().run_fm_seeding(workload)
        monkeypatch.setenv(DISABLE_ENV, "1")
        uncached = CpuModel().run_fm_seeding(workload)
        assert cached.runtime_cycles == uncached.runtime_cycles
        assert cached.mem_requests == uncached.mem_requests
        assert cached.energy_dram_nj == uncached.energy_dram_nj
