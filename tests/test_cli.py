"""Tests for the command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig12", "fig15", "table2", "sec6g"):
        assert name in out


def test_catalog_is_complete():
    # One entry per paper artifact (Fig. 3 + Figs. 12-17 + 2 tables + VI-G).
    assert set(EXPERIMENTS) == {
        "fig3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "table1", "table2", "sec6g",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_quick_run_of_cheap_figure(capsys):
    assert main(["table2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "PE hardware overhead" in out
    assert "BEACON" in out


def test_quick_run_of_fig13(capsys):
    assert main(["fig13", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "coalescing" in out
    assert "imbalance" in out
