"""Tests for the post-run diagnostics collector."""

import pytest

from repro.core import Algorithm, BeaconConfig, BeaconD, OptimizationFlags
from repro.experiments.diagnostics import collect, print_diagnostics
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload


@pytest.fixture(scope="module")
def finished_system():
    system = BeaconD(
        config=BeaconConfig().scaled(16),
        flags=OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING),
    )
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.06,
                                     read_scale=2.0)
    system.run_fm_seeding(workload)
    return system


def test_collect_structure(finished_system):
    diag = collect(finished_system)
    assert diag.runtime_cycles > 0
    assert len(diag.controllers) == 8
    assert len(diag.modules) == 2
    assert diag.links  # every fabric link with traffic appears


def test_link_utilization_bounds(finished_system):
    diag = collect(finished_system)
    for link in diag.links:
        assert 0.0 <= link.utilization <= 1.0
        assert link.wire_bytes >= 0


def test_controller_metrics(finished_system):
    diag = collect(finished_system)
    issued = sum(c.issued for c in diag.controllers)
    assert issued > 0
    for ctrl in diag.controllers:
        assert 0.0 <= ctrl.row_hit_rate <= 1.0
        if ctrl.accessed_bytes:
            assert 0.0 < ctrl.access_efficiency <= 1.0


def test_module_locality(finished_system):
    diag = collect(finished_system)
    # Full-optimization BEACON-D keeps most requests DIMM-local.
    mean_local = sum(m.local_fraction for m in diag.modules) / len(diag.modules)
    assert mean_local > 0.5


def test_bottleneck_guess_is_labelled(finished_system):
    diag = collect(finished_system)
    assert diag.bottleneck_guess() in {
        "dram-activation-bound", "latency/parallelism-bound", "unknown",
    } or diag.bottleneck_guess().startswith("link-bound")


def test_print_does_not_crash(finished_system, capsys):
    print_diagnostics(collect(finished_system))
    out = capsys.readouterr().out
    assert "hottest links" in out
    assert "NDP modules" in out
