"""Unit tests for the observability layer: recorders, sampling, export,
and the memory-bounded histogram that backs live metrics."""

import io
import json

import pytest

from repro.obs import (
    DEFAULT_EVENT_LIMIT,
    MetricsSampler,
    NullRecorder,
    TRACE_CATEGORIES,
    TraceRecorder,
    TraceSession,
    busiest_components,
    current_recorder,
    trace_layers,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.sim.engine import Engine
from repro.sim.stats import Histogram, StatScope


class TestNullRecorder:
    def test_is_falsy(self):
        assert not NullRecorder()
        assert NullRecorder().enabled is False

    def test_wants_nothing(self):
        null = NullRecorder()
        for cat in TRACE_CATEGORIES:
            assert null.wants(cat) is False

    def test_all_record_calls_are_noops(self):
        null = NullRecorder()
        null.complete("dram", "RD", "a.b", 0, 10, pid=1, args={"x": 1})
        null.instant("cxl", "i", "a.b", 0)
        null.counter("ndp", "c", "a.b", 0, {"busy": 1})
        null.async_begin("ndp", "task", "a.b", 0, 7)
        null.async_end("ndp", "task", "a.b", 5, 7)
        null.register_root(0, "sys", StatScope("sys"))

    def test_engine_default_is_untraced(self):
        assert current_recorder() is None or isinstance(
            current_recorder(), TraceRecorder
        )
        engine = Engine()
        # Outside a session, new engines carry no tracer.
        if current_recorder() is None:
            assert engine.tracer is None


class TestTraceRecorder:
    def test_complete_span_shape(self):
        rec = TraceRecorder(tck_ns=1.25)
        rec.complete("dram", "RD", "sys.mc", 800, 80, pid=3, args={"bank": 2})
        (event,) = rec.events
        assert event["ph"] == "X"
        assert event["cat"] == "dram"
        assert event["pid"] == 3
        assert event["ts"] == pytest.approx(800 * 1.25 / 1000)
        assert event["dur"] == pytest.approx(80 * 1.25 / 1000)
        assert event["args"] == {"bank": 2}

    def test_category_filter(self):
        rec = TraceRecorder(categories={"cxl"})
        assert rec.wants("cxl") and not rec.wants("dram")
        rec.complete("dram", "RD", "sys.mc", 0, 10)
        rec.instant("cxl", "flit_flush", "sys.link", 5)
        assert [e["cat"] for e in rec.events] == ["cxl"]
        assert rec.dropped == 0  # filtered events are not "dropped"

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceRecorder(categories={"gpu"})

    def test_event_limit_counts_dropped(self):
        rec = TraceRecorder(limit=2)
        for i in range(5):
            rec.instant("dram", "e", "sys", i)
        assert rec.recorded == 2
        assert rec.dropped == 3

    def test_default_limit(self):
        assert TraceRecorder().limit == DEFAULT_EVENT_LIMIT

    def test_tids_interned_per_pid_and_path(self):
        rec = TraceRecorder()
        rec.instant("dram", "a", "sys.mc", 0, pid=0)
        rec.instant("dram", "b", "sys.mc", 1, pid=0)
        rec.instant("dram", "c", "sys.mc", 2, pid=1)
        tids = [e["tid"] for e in rec.events]
        assert tids[0] == tids[1] != tids[2]

    def test_async_pair_and_layers(self):
        rec = TraceRecorder()
        rec.async_begin("ndp", "task", "sys.ndp", 0, 42, pid=0)
        rec.async_end("ndp", "task", "sys.ndp", 100, 42, pid=0)
        begin, end = rec.events
        assert (begin["ph"], end["ph"]) == ("b", "e")
        assert begin["id"] == end["id"] == "0x2a"
        assert rec.layers() == {"ndp"}

    def test_metadata_names_processes_and_threads(self):
        rec = TraceRecorder()
        rec.register_root(0, "beacon-d", StatScope("beacon-d"))
        rec.complete("dram", "RD", "beacon-d.mc", 0, 1, pid=0)
        metadata = rec.metadata_events()
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}
        assert rec.chrome_events() == metadata + rec.events


class TestMetricsSampler:
    def _recorder_with_scope(self):
        rec = TraceRecorder()
        scope = StatScope("sys")
        scope.add("issued", 3)
        scope.child("mc").add("row_hits", 2)
        rec.register_root(0, "sys", scope)
        return rec, scope

    def test_samples_once_per_interval(self):
        rec, scope = self._recorder_with_scope()
        sampler = MetricsSampler(interval_cycles=100)
        rec.metrics = sampler
        rec.instant("dram", "a", "sys", 0)      # first sample (cycle 0)
        rec.instant("dram", "b", "sys", 50)     # same interval: no sample
        cycles = {s.cycle for s in sampler.samples}
        assert cycles == {0}
        scope.add("issued", 1)
        rec.instant("dram", "c", "sys", 120)    # next interval
        assert {s.cycle for s in sampler.samples} == {0, 120}
        latest = [s for s in sampler.samples
                  if s.cycle == 120 and s.key == "issued"]
        assert latest[0].value == 4.0

    def test_key_filter(self):
        rec, _scope = self._recorder_with_scope()
        sampler = MetricsSampler(interval_cycles=10, keys={"row_hits"})
        rec.metrics = sampler
        rec.instant("dram", "a", "sys", 0)
        assert {s.key for s in sampler.samples} == {"row_hits"}
        assert sampler.samples[0].path == "sys.mc"

    def test_csv_round_trip(self):
        rec, _scope = self._recorder_with_scope()
        sampler = MetricsSampler(interval_cycles=10)
        rec.metrics = sampler
        rec.instant("dram", "a", "sys", 0)
        buffer = io.StringIO()
        rows = write_metrics_csv(sampler, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "cycle,pid,path,key,value"
        assert len(lines) == rows + 1 == sampler.sample_count + 1

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval_cycles=0)


class TestTraceSessionInstall:
    def test_session_installs_and_restores(self):
        assert current_recorder() is None
        with TraceSession() as session:
            assert current_recorder() is session.recorder
            engine = Engine()
            assert engine.tracer is session.recorder
        assert current_recorder() is None

    def test_sessions_nest(self):
        with TraceSession() as outer:
            with TraceSession() as inner:
                assert current_recorder() is inner.recorder
            assert current_recorder() is outer.recorder
        assert current_recorder() is None

    def test_save_without_sampler_rejects_metrics_path(self, tmp_path):
        with TraceSession() as session:
            pass
        with pytest.raises(ValueError, match="metrics sampler"):
            session.save(str(tmp_path / "t.json"),
                         metrics_path=str(tmp_path / "m.csv"))


class TestExport:
    def test_chrome_trace_file_shape(self, tmp_path):
        rec = TraceRecorder()
        rec.register_root(0, "sys", StatScope("sys"))
        rec.complete("dram", "RD", "sys.mc", 0, 8, pid=0)
        path = str(tmp_path / "trace.json")
        written = write_chrome_trace(rec, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["displayTimeUnit"] == "ns"
        assert len(payload["traceEvents"]) == written
        assert payload["otherData"]["recorded"] == 1
        assert trace_layers(payload["traceEvents"]) == {"dram"}

    def test_busiest_components_ranks_by_span_time(self):
        rec = TraceRecorder()
        rec.register_root(0, "sys", StatScope("sys"))
        rec.complete("dram", "RD", "sys.fast", 0, 10, pid=0)
        rec.complete("dram", "RD", "sys.slow", 0, 100, pid=0)
        rec.instant("dram", "noise", "sys.slow", 0, pid=0)
        (top, _), (second, _) = busiest_components(rec.chrome_events(), n=2)
        assert top.endswith("sys.slow") and second.endswith("sys.fast")


class TestHistogramBounding:
    def test_exact_until_cap(self):
        hist = Histogram(cap=100)
        for v in range(100):
            hist.record(v)
        assert not hist.saturated
        assert hist.count == 100
        assert hist.mean == pytest.approx(49.5)
        assert hist.percentile(100) == 99  # exact: all samples retained

    def test_memory_bounded_with_exact_aggregates(self):
        hist = Histogram(cap=64)
        n = 10_000
        for v in range(n):
            hist.record(v)
        assert len(hist.values) == 64          # bounded retention
        assert hist.saturated
        assert hist.count == n                 # aggregates stay exact
        assert hist.total == n * (n - 1) / 2
        assert hist.mean == pytest.approx((n - 1) / 2)
        assert hist.minimum == 0 and hist.maximum == n - 1
        # The reservoir is a subset of what was recorded.
        assert all(0 <= v < n for v in hist.values)

    def test_reservoir_is_deterministic(self):
        def build():
            hist = Histogram(cap=32)
            for v in range(5_000):
                hist.record(v * 7 % 4999)
            return hist.values

        assert build() == build()

    def test_default_cap_documented_value(self):
        assert Histogram().cap == Histogram.CAP == 65536

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            Histogram(cap=0)
